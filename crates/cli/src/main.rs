//! `protogen` — the command-line front door to the toolchain.
//!
//! ```text
//! protogen table   <protocol> [--stalling] [--machine cache|dir] [--markdown]
//! protogen verify  <protocol> [--stalling] [--caches N] [--threads N] [--max-states N]
//!                  [--mem-budget BYTES] [--store full|delta|fp-only] [--spill-chunk BYTES]
//!                  [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
//! protogen verify  --compose l1=msi:2,llc=mesi [--stalling] [--max-states N]
//! protogen dot     <protocol> [--stalling] [--machine cache|dir]
//! protogen murphi  <protocol> [--stalling] [--caches N]
//! protogen sim     <protocol> [--stalling] [--caches N] [--addrs N] [--accesses N]
//!                  [--workload W] [--store-pct P] [--trace FILE]
//!                  [--network ordered|unordered] [--latency DIST] [--cap N]
//!                  [--seed N] [--json]
//! protogen serve   <protocol> [--stalling] [--caches N] [--dir-shards N] [--addrs N]
//!                  [--workload W] [--store-pct P] [--ops N] [--seed N]
//!                  [--duration SECS] [--mailbox-cap N] [--threads N] [--json]
//!                  [--faults delay,stall,squeeze,crash|all] [--fault-seed N]
//!                  [--crash-at-op N]
//! protogen sweep   [--protocols a,b] [--caches 2,4] [--accesses N] [--seed N]
//!                  [--threads N] [--list] [--out DIR] [--json]
//! protogen fuzz    [--seed N] [--mutants N] [--threads N] [--budget N]
//!                  [--protocols a,b] [--out DIR] [--json]
//! protogen fuzz    --replay FILE [--budget N]
//! protogen litmus  [protocol|all] [--tests SB,MP] [--threads N] [--seed N]
//!                  [--depth N] [--markdown]
//! protogen stats   [--stalling]
//! protogen compile <file.pgen> [--stalling] [--caches N] [--threads N] [--max-states N]
//! ```
//!
//! `--threads` sets the worker count (default: all available cores);
//! verification and sweep results are identical for every thread count.
//!
//! `--compose` points `verify`, `table`, or `dot` at a *hierarchical
//! composition* instead of a flat protocol: a comma-separated stack of
//! `label=protocol[:fanout]` levels, leaf-first (fanout defaults to 1).
//! `verify --compose` model-checks the whole tree — per-level SWMR,
//! leaf-level data-value, deadlock freedom — single-threaded with
//! per-level symmetry reduction; `table`/`dot --compose` render one
//! section (or cluster) per level with the derived glue. `compile` on a
//! `.pgen` file carrying a `compose { … }` block does the same after
//! resolving the referenced protocol names.
//!
//! `verify --mem-budget` caps the checker's accounted RAM (suffixes K/M/G,
//! binary): over budget, cold frontier bytes and frozen visited records
//! spill to scratch files and stream back — results are byte-identical at
//! any budget. `--store delta` delta-compresses frontier encodings;
//! `--store fp-only` keeps only 64-bit fingerprints (least RAM, no
//! counterexample trace, collision bound printed with the result).
//!
//! `verify --checkpoint-dir` snapshots the exploration at epoch
//! boundaries (every `--checkpoint-every` depths, default 8) into a
//! checksummed, versioned checkpoint; after a crash or `kill -9`,
//! `--resume` continues from the newest committed checkpoint and produces
//! byte-identical states, transitions, and violation traces. Flat
//! verification only (not `--compose`).
//!
//! `serve --faults` injects a seeded, replayable fault schedule into the
//! live run: FIFO-preserving delivery delays, bounded worker stalls,
//! transient mailbox-capacity squeezes, and full cache crashes recovered
//! through ordinary replacement traffic. Every fault schedule must stay
//! inside the verified envelope; the JSON report carries structured
//! fault/recovery counters and a `stop_reason` (exit 3 on `deadline`,
//! 4 on an unfinished fault plan).
//!
//! `sim` workloads: uniform, zipfian, producer-consumer, migratory,
//! false-sharing, private — or `--trace file.trc` to replay a trace.
//! Latency distributions: `fixed:N`, `uniform:LO:HI`, `geometric:BASE:PCT`.
//! `simulate` is kept as a legacy alias for `sim` (`--stores`/`--cores`
//! map to `--store-pct`/`--caches`).
//!
//! `serve` runs the protocol as a live multi-threaded cache service (one
//! thread per cache plus `--dir-shards` directory shards) *inside the
//! model-checked envelope*: the checker first collects exhaustive
//! `(machine, state, event)` pair coverage at the same cache count, then
//! the service executes `--ops` operations and any live dispatch outside
//! that coverage — or any invariant violation — exits non-zero.
//!
//! `litmus` classifies each protocol's observable memory model by
//! exhaustively enumerating the classical litmus tests (SB, MP, LB, IRIW,
//! CoRR) through the generated FSMs and comparing against executable SC
//! and TSO reference models. The exit code is non-zero unless every
//! protocol is classified exactly as its specification promises.
//! `--depth` bounds the per-(protocol, test) state space; `--seed` only
//! perturbs exploration order (the enumeration is exhaustive, so outcomes
//! are seed-invariant).
//!
//! `<protocol>` is one of: msi, mesi, mosi, msi-upgrade, msi-unordered,
//! tso-cc, si-sd.

use protogen_backend::{
    render_composed_table, render_table, to_dot, to_dot_composed, to_murphi, TableOptions,
};
use protogen_core::{compose, generate, Composed, GenConfig, Generated};
use protogen_litmus::{run_suite, Limits};
use protogen_mc::{HierChecker, HierConfig, McConfig, ModelChecker, PropertySet, StoreMode};
use protogen_serve::{
    checked_envelope, pair_label, serve, FaultConfig, ServeConfig, ServeError, StopReason,
};
use protogen_sim::{
    parse_trace, run_sweep, simulate, Json, LatencyDist, NetModel, SimConfig, SweepConfig, Workload,
};
use protogen_spec::{Composition, LevelSpec, Ssp};
use std::process::ExitCode;

struct Args {
    flags: Vec<String>,
    positional: Vec<String>,
}

impl Args {
    fn parse() -> Args {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(a) = it.next() {
            if let Some(f) = a.strip_prefix("--") {
                let needs_value = matches!(
                    f,
                    "machine"
                        | "caches"
                        | "stores"
                        | "cores"
                        | "threads"
                        | "addrs"
                        | "accesses"
                        | "workload"
                        | "store-pct"
                        | "dir-shards"
                        | "ops"
                        | "duration"
                        | "mailbox-cap"
                        | "trace"
                        | "network"
                        | "latency"
                        | "cap"
                        | "seed"
                        | "protocols"
                        | "out"
                        | "mutants"
                        | "budget"
                        | "max-states"
                        | "mem-budget"
                        | "store"
                        | "spill-chunk"
                        | "replay"
                        | "compose"
                        | "property"
                        | "tests"
                        | "depth"
                        | "checkpoint-dir"
                        | "checkpoint-every"
                        | "faults"
                        | "fault-seed"
                        | "crash-at-op"
                );
                if needs_value {
                    let v = it.next().unwrap_or_default();
                    flags.push(format!("{f}={v}"));
                } else {
                    flags.push(f.to_string());
                }
            } else {
                positional.push(a);
            }
        }
        Args { flags, positional }
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags.iter().find_map(|f| f.strip_prefix(&format!("{name}=")))
    }
}

fn protocol(name: &str) -> Option<Ssp> {
    protogen_protocols::by_name(name)
}

fn gen_config(args: &Args) -> GenConfig {
    if args.flag("stalling") {
        GenConfig::stalling()
    } else {
        GenConfig::non_stalling()
    }
}

fn generate_or_exit(ssp: &Ssp, args: &Args) -> Generated {
    match generate(ssp, &gen_config(args)) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("generation failed: {e}");
            std::process::exit(2);
        }
    }
}

/// Parses a byte size with optional binary K/M/G suffix (`64M` = 64 MiB).
fn parse_bytes(v: &str) -> Option<usize> {
    let (digits, shift) = match v.as_bytes().last()? {
        b'K' | b'k' => (&v[..v.len() - 1], 10),
        b'M' | b'm' => (&v[..v.len() - 1], 20),
        b'G' | b'g' => (&v[..v.len() - 1], 30),
        _ => (v, 0),
    };
    digits.parse::<usize>().ok()?.checked_shl(shift)
}

/// Resolves the `--property` flag: a named contract (`sc`, `tso`, `weak`,
/// `none`) or a `+`-combination of individual properties; defaults to the
/// set the protocol's declared memory model promises.
fn property_set(ssp: &Ssp, args: &Args) -> PropertySet {
    match args.value("property") {
        None => PropertySet::promised(ssp.consistency),
        Some(v) => match v.parse() {
            Ok(set) => set,
            Err(e) => {
                eprintln!("bad --property: {e}");
                std::process::exit(2);
            }
        },
    }
}

fn verify(g: &Generated, ssp: &Ssp, args: &Args, n: usize, threads: usize) -> bool {
    let mut cfg = McConfig::with_caches(n);
    cfg.ordered = ssp.network_ordered;
    cfg.threads = threads;
    // `--max-states` raises (or lowers) the exploration budget — deep
    // cache counts can exceed the 20M-state default. A zero budget would
    // stop before the initial state and print a "PASSED"-shaped line for
    // an exploration that proved nothing, so reject it outright.
    if let Some(v) = args.value("max-states") {
        match v.parse() {
            Ok(0) => {
                eprintln!(
                    "bad --max-states `0`: the budget must admit at least the initial state \
                     (an empty exploration verifies nothing)"
                );
                std::process::exit(2);
            }
            Ok(n) => cfg.max_states = n,
            Err(_) => {
                eprintln!("bad --max-states `{v}`");
                std::process::exit(2);
            }
        }
    }
    if let Some(v) = args.value("mem-budget") {
        match parse_bytes(v) {
            Some(b) => cfg.mem_budget_bytes = b,
            None => {
                eprintln!("bad --mem-budget `{v}` (bytes, with optional K/M/G suffix)");
                std::process::exit(2);
            }
        }
    }
    if let Some(v) = args.value("spill-chunk") {
        match parse_bytes(v) {
            Some(b) => cfg.spill_chunk_bytes = b,
            None => {
                eprintln!("bad --spill-chunk `{v}` (bytes, with optional K/M/G suffix)");
                std::process::exit(2);
            }
        }
    }
    if let Some(v) = args.value("store") {
        match v.parse::<StoreMode>() {
            Ok(mode) => cfg.store = mode,
            Err(e) => {
                eprintln!("bad --store: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(dir) = args.value("checkpoint-dir") {
        cfg.checkpoint_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(v) = args.value("checkpoint-every") {
        match v.parse() {
            Ok(n) if n >= 1 => cfg.checkpoint_every = n,
            _ => {
                eprintln!("bad --checkpoint-every `{v}` (whole epochs, at least 1)");
                std::process::exit(2);
            }
        }
    }
    let resume = args.flag("resume");
    if resume && cfg.checkpoint_dir.is_none() {
        eprintln!("--resume requires --checkpoint-dir (where the checkpoints live)");
        std::process::exit(2);
    }
    // Default to the property contract the protocol declares; `--property`
    // overrides it (e.g. `--property sc` to demonstrate that TSO-CC
    // really does trade SWMR away).
    cfg.properties = property_set(ssp, args);
    let fp_only = cfg.store == StoreMode::FpOnly;
    let mc = ModelChecker::new(&g.cache, &g.directory, cfg);
    let r = if resume {
        match mc.resume() {
            Ok(r) => r,
            Err(e) => {
                // Corruption and mismatches are hard errors, never a
                // silent fresh start: a "PASSED" that quietly re-ran from
                // scratch would misrepresent what was verified.
                eprintln!("cannot resume: {e}");
                std::process::exit(2);
            }
        }
    } else {
        mc.run()
    };
    println!(
        "{}: {} — {} states, {} transitions, {:.2}s ({:.0} states/s) on {} thread{}",
        ssp.name,
        if r.passed() { "PASSED" } else { "FAILED" },
        r.states,
        r.transitions,
        r.seconds,
        r.states as f64 / r.seconds.max(1e-9),
        r.threads,
        if r.threads == 1 { "" } else { "s" }
    );
    if r.spill_bytes > 0 {
        println!(
            "spilled {} bytes in {} chunks under the memory budget (peak accounted RAM {} \
             bytes){}",
            r.spill_bytes,
            r.spill_chunks,
            r.peak_mem_bytes,
            // "spilled + completed" is not an early stop: unless a limit
            // fired below, the whole space was still explored.
            if r.limit.is_none() { " — exploration completed" } else { "" }
        );
    }
    if fp_only {
        println!(
            "fingerprint-only store: no counterexample traces; expected state pairs merged by \
             a 64-bit collision ≈ {:.3e}",
            r.expected_collision_pairs()
        );
    }
    if let Some(v) = &r.violation {
        println!("violation: {}", v.kind);
        for line in &v.trace {
            println!("  {line}");
        }
    }
    if let Some(l) = &r.limit {
        println!("stopped early: {l} — partial stats only (raise --max-states to go further)");
    }
    r.passed()
}

/// Builds a [`Composition`] from `label=protocol[:fanout]` level specs,
/// leaf-first. Fanout defaults to 1.
fn build_composition(
    name: &str,
    levels: impl Iterator<Item = Result<(String, String, usize), String>>,
) -> Result<Composition, String> {
    let mut out = Vec::new();
    for level in levels {
        let (label, proto, fanout) = level?;
        let ssp = protocol(&proto).ok_or(format!(
            "unknown protocol `{proto}` in composition (try msi, mesi, mosi, msi-upgrade, \
             msi-unordered, tso-cc, si-sd)"
        ))?;
        out.push(LevelSpec { label, ssp, fanout });
    }
    if out.is_empty() {
        return Err("composition has no levels".into());
    }
    Ok(Composition { name: name.to_string(), levels: out })
}

/// Parses the `--compose l1=msi:2,llc=mesi` level list.
fn parse_compose_flag(spec: &str) -> Result<Composition, String> {
    build_composition(
        spec,
        spec.split(',').map(|part| {
            let (label, rest) = part
                .split_once('=')
                .ok_or(format!("bad level `{part}` (want label=protocol[:fanout])"))?;
            let (proto, fanout) = match rest.split_once(':') {
                Some((p, f)) => {
                    (p, f.parse().map_err(|_| format!("bad fanout `{f}` in `{part}`"))?)
                }
                None => (rest, 1),
            };
            Ok((label.to_string(), proto.to_string(), fanout))
        }),
    )
}

/// Generates a composition or exits with a usage error, mirroring
/// [`generate_or_exit`] for the composed pipeline.
fn compose_or_exit(comp: &Composition, args: &Args) -> Composed {
    match compose(comp, &gen_config(args)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("composition failed: {e}");
            std::process::exit(2);
        }
    }
}

/// `verify --compose`: model-check the whole stack with the hierarchical
/// checker (per-level SWMR, leaf data-value, deadlock freedom).
fn verify_composed(composed: &Composed, comp: &Composition, args: &Args) -> bool {
    let mut cfg = HierConfig::default();
    if let Some(v) = args.value("max-states") {
        match v.parse() {
            Ok(n) if n > 0 => cfg.max_states = n,
            _ => {
                eprintln!("bad --max-states `{v}` (a positive state budget)");
                std::process::exit(2);
            }
        }
    }
    // The property contract comes from the leaf protocol — inner levels
    // are where cores live; `--property` overrides as for flat verify.
    cfg.properties = property_set(&comp.levels[0].ssp, args);
    let hc = HierChecker::new(composed, cfg);
    let (counts, _) = hc.topology();
    let r = hc.check();
    println!(
        "{}: {} — {} states, {} transitions, {:.2}s ({:.0} states/s); {} levels, {} nodes, \
         symmetry group {}",
        comp.name,
        if r.passed() { "PASSED" } else { "FAILED" },
        r.states,
        r.transitions,
        r.seconds,
        r.states as f64 / r.seconds.max(1e-9),
        composed.depth(),
        counts.iter().sum::<usize>(),
        hc.group_size(),
    );
    if let Some(v) = &r.violation {
        println!("violation: {}", v.kind);
        for line in &v.trace {
            println!("  {line}");
        }
    }
    if r.hit_state_limit {
        println!("stopped early: state budget — partial stats only (raise --max-states)");
    }
    r.passed()
}

/// Dispatches `verify`/`table`/`dot` over a resolved composition.
fn compose_cmd(cmd: &str, comp: &Composition, args: &Args) -> ExitCode {
    let composed = compose_or_exit(comp, args);
    match cmd {
        "verify" => {
            if args.value("checkpoint-dir").is_some() || args.flag("resume") {
                // The hierarchical checker is single-threaded with its own
                // store layout; checkpoint/resume covers flat runs only.
                eprintln!("--checkpoint-dir/--resume are not supported with --compose");
                return ExitCode::from(2);
            }
            if verify_composed(&composed, comp, args) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "table" => {
            let opts = TableOptions { markdown: args.flag("markdown"), ..TableOptions::default() };
            print!("{}", render_composed_table(&composed, &opts));
            ExitCode::SUCCESS
        }
        "dot" => {
            print!("{}", to_dot_composed(&composed));
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("--compose supports verify, table, and dot (not `{other}`)");
            ExitCode::from(2)
        }
    }
}

/// Builds a [`SimConfig`] from CLI flags, warning (and clamping to FIFO
/// delivery) when an ordered-network protocol is pointed at an unordered
/// interconnect. `legacy` is the `simulate` alias, whose historical
/// contract is one contended block, not the default working set.
fn sim_config(ssp: &Ssp, args: &Args, legacy: bool) -> Result<SimConfig, String> {
    let mut cfg = SimConfig::default();
    if legacy {
        cfg.n_addrs = 1;
    }
    // `--cores`/`--stores` are the legacy `simulate` spellings.
    if let Some(v) = args.value("caches").or_else(|| args.value("cores")) {
        cfg.n_caches = v.parse().map_err(|_| format!("bad --caches `{v}`"))?;
    }
    if let Some(v) = args.value("addrs") {
        cfg.n_addrs = v.parse().map_err(|_| format!("bad --addrs `{v}`"))?;
    }
    if let Some(v) = args.value("accesses") {
        cfg.accesses_per_core = v.parse().map_err(|_| format!("bad --accesses `{v}`"))?;
    }
    if let Some(v) = args.value("seed") {
        cfg.seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
    }
    let store_pct = args
        .value("store-pct")
        .or_else(|| args.value("stores"))
        .map(|v| v.parse().map_err(|_| format!("bad --store-pct `{v}`")))
        .transpose()?
        .unwrap_or(50);
    cfg.workload = if let Some(path) = args.value("trace") {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Workload::Trace(parse_trace(&src).map_err(|e| e.to_string())?)
    } else {
        Workload::parse(args.value("workload").unwrap_or("uniform"), store_pct)?
    };
    match args.value("network") {
        None | Some("ordered") => {}
        Some("unordered") => {
            // An unordered request implies jittered hops (the sweep's
            // unordered point) unless --latency overrides below.
            cfg.network.latency = LatencyDist::Uniform { lo: 4, hi: 16 };
            if ssp.network_ordered {
                eprintln!(
                    "note: {} is generated for ordered networks; applying latency jitter \
                     with per-block FIFO delivery instead of reordering",
                    ssp.name
                );
            } else {
                cfg.network.model = NetModel::Unordered;
            }
        }
        Some(other) => return Err(format!("bad --network `{other}` (ordered or unordered)")),
    }
    if let Some(v) = args.value("latency") {
        cfg.network.latency = LatencyDist::parse(v)?;
    }
    if let Some(v) = args.value("cap") {
        cfg.network.capacity = v.parse().map_err(|_| format!("bad --cap `{v}`"))?;
    }
    Ok(cfg)
}

fn sim(ssp: &Ssp, g: &Generated, args: &Args, legacy: bool) -> ExitCode {
    let cfg = match sim_config(ssp, args, legacy) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match simulate(&g.cache, &g.directory, &cfg) {
        Ok(r) => {
            if args.flag("json") {
                let doc = Json::obj([
                    ("protocol", Json::Str(ssp.name.clone())),
                    (
                        "config",
                        Json::Str(
                            if args.flag("stalling") { "stalling" } else { "non-stalling" }.into(),
                        ),
                    ),
                    ("workload", Json::Str(cfg.workload.label())),
                    ("caches", Json::U64(cfg.n_caches as u64)),
                    ("seed", Json::U64(cfg.seed)),
                    ("stats", r.to_json()),
                ]);
                print!("{}", doc.render());
            } else {
                println!(
                    "{}: {} accesses ({} hits, {} misses) in {} cycles under {}",
                    ssp.name, r.completed, r.hits, r.misses, r.cycles, cfg.workload
                );
                println!(
                    "  miss latency p50/p95/p99/max: {}/{}/{}/{} (avg {:.1})",
                    r.p50_latency, r.p95_latency, r.p99_latency, r.max_latency, r.avg_miss_latency
                );
                println!(
                    "  {} messages ({:.1}/miss), {} stall-cycles, {} backpressure-cycles, \
                     dir occupancy {:.1}%",
                    r.messages,
                    r.msgs_per_miss,
                    r.stall_cycles,
                    r.backpressure_cycles,
                    r.dir_occupancy * 100.0
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("simulation failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `protogen serve`: model-check the coverage envelope, run the live
/// multi-threaded service, and fail on any escape or invariant violation.
fn serve_cmd(ssp: &Ssp, g: &Generated, args: &Args, caches: usize, threads: usize) -> ExitCode {
    let usage_err = |m: String| -> ExitCode {
        eprintln!("{m}");
        ExitCode::from(2)
    };
    let mut cfg = ServeConfig::new(caches);
    macro_rules! num_flag {
        ($flag:literal, $field:expr) => {
            if let Some(v) = args.value($flag) {
                match v.parse() {
                    Ok(n) => $field = n,
                    Err(_) => return usage_err(format!("bad --{} `{v}`", $flag)),
                }
            }
        };
    }
    num_flag!("dir-shards", cfg.dir_shards);
    num_flag!("addrs", cfg.n_addrs);
    num_flag!("ops", cfg.total_ops);
    num_flag!("seed", cfg.seed);
    num_flag!("mailbox-cap", cfg.mailbox_cap);
    num_flag!("duration", cfg.max_seconds);
    let store_pct = match args.value("store-pct").map(str::parse).transpose() {
        Ok(p) => p.unwrap_or(50),
        Err(_) => {
            return usage_err(format!("bad --store-pct `{}`", args.value("store-pct").unwrap()))
        }
    };
    cfg.workload = match Workload::parse(args.value("workload").unwrap_or("uniform"), store_pct) {
        Ok(w) => w,
        Err(e) => return usage_err(e),
    };
    if let Some(list) = args.value("faults") {
        // The fault seed defaults to the workload seed: one seed replays
        // the whole run, faults included.
        let seed = match args.value("fault-seed").map(str::parse).transpose() {
            Ok(s) => s.unwrap_or(cfg.seed),
            Err(_) => {
                return usage_err(format!(
                    "bad --fault-seed `{}`",
                    args.value("fault-seed").unwrap()
                ))
            }
        };
        let mut fc = FaultConfig::none(seed);
        for item in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match item {
                "all" => fc = FaultConfig::all(seed),
                "delay" | "delays" => fc.delays = true,
                "stall" | "stalls" => fc.stalls = true,
                "squeeze" | "squeezes" => fc.squeezes = true,
                "crash" | "crashes" => fc.crashes = fc.crashes.max(1),
                other => {
                    return usage_err(format!(
                        "bad --faults item `{other}` (delay, stall, squeeze, crash, or all)"
                    ))
                }
            }
        }
        if let Some(v) = args.value("crash-at-op") {
            match v.parse() {
                Ok(n) => {
                    fc.crash_at_op = Some(n);
                    fc.crashes = fc.crashes.max(1);
                }
                Err(_) => return usage_err(format!("bad --crash-at-op `{v}`")),
            }
        }
        cfg.faults = Some(fc);
    } else if args.value("crash-at-op").is_some() {
        return usage_err("--crash-at-op requires --faults (e.g. --faults crash)".into());
    }

    // The envelope: exhaustive pair coverage at the same cache count. Runs
    // first so a protocol the checker rejects never goes live. Progress
    // goes to stderr — `--json` keeps stdout machine-readable.
    let mut mc_cfg = McConfig::with_caches(caches);
    mc_cfg.ordered = ssp.network_ordered;
    mc_cfg.threads = threads;
    // The envelope enforces exactly the contract `verify` enforces: the
    // property set the protocol's memory model promises (or --property).
    mc_cfg.properties = property_set(ssp, args);
    eprintln!("model-checking the {caches}-cache envelope for {}…", ssp.name);
    let envelope = match checked_envelope(&g.cache, &g.directory, mc_cfg) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("envelope: {} model-checked (machine, state, event) pairs", envelope.len());

    let report = match serve(&g.cache, &g.directory, &cfg) {
        Ok(r) => r,
        Err(ServeError::Config(m)) => return usage_err(format!("bad configuration: {m}")),
        Err(e) => {
            eprintln!("service run FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    let escapes = report.escapes(&envelope);

    if args.flag("json") {
        let doc = Json::obj([
            ("protocol", Json::Str(ssp.name.clone())),
            (
                "config",
                Json::Str(if args.flag("stalling") { "stalling" } else { "non-stalling" }.into()),
            ),
            ("workload", Json::Str(cfg.workload.label())),
            ("seed", Json::U64(cfg.seed)),
            ("envelope_pairs", Json::U64(envelope.len() as u64)),
            ("report", report.to_json(&g.cache, &g.directory, &escapes)),
        ]);
        print!("{}", doc.render());
    } else {
        println!(
            "{}: {} ops ({} hits, {} misses) in {:.3}s — {:.0} ops/s over {} cache \
             worker(s) + {} dir shard(s)",
            ssp.name,
            report.ops,
            report.hits,
            report.misses,
            report.seconds,
            report.ops_per_sec(),
            report.n_caches,
            report.dir_shards
        );
        if !report.miss_latency.is_empty() {
            println!(
                "  miss latency p50/p95/p99/max: {}/{}/{}/{} ns",
                report.miss_latency.percentile(50.0),
                report.miss_latency.percentile(95.0),
                report.miss_latency.percentile(99.0),
                report.miss_latency.max()
            );
        }
        println!(
            "  {} messages, peak queue depths {:?}",
            report.messages, report.peak_queue_depths
        );
        println!(
            "  live coverage: {} pairs, all inside the {}-pair checked envelope: {}",
            report.coverage.len(),
            envelope.len(),
            if escapes.is_empty() { "yes" } else { "NO" }
        );
        println!("  stop reason: {}", report.stop_reason.label());
        if let Some(fs) = &report.faults {
            println!(
                "  faults: {}/{} crash recoveries, {} recovery writeback(s), {} delay(s), \
                 {} stall(s), {} squeeze park(s){}",
                fs.crashes_completed,
                fs.planned_crashes,
                fs.recovery_writebacks,
                fs.delays_injected,
                fs.stalls_injected,
                fs.squeeze_parks,
                if fs.lines_lost > 0 {
                    format!(", {} LINE(S) LOST", fs.lines_lost)
                } else {
                    String::new()
                }
            );
        }
    }
    if !escapes.is_empty() {
        eprintln!(
            "COVERAGE ESCAPE: {} live pair(s) the model checker never visited:",
            escapes.len()
        );
        for p in &escapes {
            eprintln!("  {}", pair_label(&g.cache, &g.directory, p));
        }
        return ExitCode::FAILURE;
    }
    match report.stop_reason {
        StopReason::Quiesced => ExitCode::SUCCESS,
        StopReason::Deadline => {
            eprintln!("run stopped at the wall-clock deadline — partial measurements only");
            ExitCode::from(3)
        }
        StopReason::Fault => {
            eprintln!("fault plan did not complete (crash point never reached) — inconclusive");
            ExitCode::from(4)
        }
    }
}

fn sweep(args: &Args, threads: usize) -> ExitCode {
    let mut cfg = SweepConfig { threads, ..SweepConfig::default() };
    if let Some(list) = args.value("protocols") {
        cfg.protocols = list.split(',').map(str::to_string).collect();
    }
    if let Some(list) = args.value("caches") {
        match list.split(',').map(str::parse).collect::<Result<Vec<usize>, _>>() {
            Ok(counts) if !counts.is_empty() => cfg.cache_counts = counts,
            _ => {
                eprintln!("bad --caches `{list}` (comma-separated counts)");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(v) = args.value("accesses") {
        match v.parse() {
            Ok(n) => cfg.accesses_per_core = n,
            Err(_) => {
                eprintln!("bad --accesses `{v}`");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(v) = args.value("seed") {
        match v.parse() {
            Ok(n) => cfg.seed = n,
            Err(_) => {
                eprintln!("bad --seed `{v}`");
                return ExitCode::from(2);
            }
        }
    }
    if args.flag("list") {
        print!("{}", cfg.listing());
        return ExitCode::SUCCESS;
    }
    let report = match run_sweep(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = args.value("out") {
        let dir = std::path::Path::new(dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        // One diffable JSON per config cell, plus the merged report.
        for cell in &report.cells {
            let path = dir.join(format!("{}.json", cell.cell.label()));
            if let Err(e) = std::fs::write(&path, cell.to_json().render()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        let path = dir.join("sweep.json");
        if let Err(e) = std::fs::write(&path, report.to_json().render()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {} cell files + sweep.json to {}", report.cells.len(), dir.display());
    }
    if args.flag("json") {
        print!("{}", report.to_json().render());
    } else if args.value("out").is_none() {
        println!(
            "{:<44} {:>9} {:>6} {:>6} {:>6} {:>8}",
            "cell", "cycles", "p50", "p95", "stalls", "msgs"
        );
        for c in &report.cells {
            println!(
                "{:<44} {:>9} {:>6} {:>6} {:>6} {:>8}",
                c.cell.label(),
                c.stats.cycles,
                c.stats.p50_latency,
                c.stats.p95_latency,
                c.stats.stall_cycles,
                c.stats.messages
            );
        }
    }
    ExitCode::SUCCESS
}

/// `protogen fuzz`: a seeded mutation campaign (or a single `--replay`).
///
/// Exit code 0 only when every negative control was caught *and* no
/// unexpected outcome (generator/checker panic, exec violation) appeared.
fn fuzz(args: &Args, threads: usize) -> ExitCode {
    use protogen_fuzz::{run_fuzz, run_mutant, FuzzConfig, Script};
    let mut cfg = FuzzConfig { threads, ..FuzzConfig::default() };
    if let Some(v) = args.value("seed") {
        match v.parse() {
            Ok(n) => cfg.seed = n,
            Err(_) => {
                eprintln!("bad --seed `{v}`");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(v) = args.value("mutants") {
        match v.parse() {
            Ok(n) => cfg.mutants = n,
            Err(_) => {
                eprintln!("bad --mutants `{v}`");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(v) = args.value("budget") {
        match v.parse() {
            Ok(n) => cfg.budget = n,
            Err(_) => {
                eprintln!("bad --budget `{v}`");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(list) = args.value("protocols") {
        cfg.protocols = list.split(',').map(str::to_string).collect();
    }

    // Single-reproducer replay: run one script back through the pipeline.
    if let Some(path) = args.value("replay") {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let script = match Script::parse(&src) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        let Some(base) = protogen_protocols::by_name(&script.protocol) else {
            eprintln!("unknown protocol `{}`", script.protocol);
            return ExitCode::from(2);
        };
        let r = run_mutant(&base, &script.mutations, &script.gen_config(), cfg.budget, false);
        println!("{}: {}", r.outcome.label(), r.outcome.detail());
        for line in &r.trace {
            println!("  {line}");
        }
        // A script whose site no longer applies did not reconstruct the
        // mutant — that is a usage error, not "the bug is fixed".
        return match r.outcome {
            protogen_fuzz::Outcome::MutationInapplicable(_) => ExitCode::from(2),
            o if o.is_unexpected() => ExitCode::FAILURE,
            _ => ExitCode::SUCCESS,
        };
    }

    // Mutant pipelines panic by design; compress each panic to one line
    // so caught-and-classified mutants don't spray backtraces, while a
    // panic that *escapes* the harness still leaves a trail to debug.
    std::panic::set_hook(Box::new(|info| eprintln!("fuzz worker panic: {info}")));
    let report = match run_fuzz(&cfg) {
        Ok(r) => r,
        Err(e) => {
            let _ = std::panic::take_hook();
            eprintln!("fuzz failed: {e}");
            return ExitCode::from(2);
        }
    };
    let _ = std::panic::take_hook();

    if let Some(dir) = args.value("out") {
        let dir = std::path::Path::new(dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        let path = dir.join("fuzz.json");
        if let Err(e) = std::fs::write(&path, report.to_json().render()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        for r in report.unexpected() {
            let s = r.shrunk.as_ref().expect("unexpected records carry a shrunk case");
            let path = dir.join(format!("repro-{}.mut", r.index));
            if let Err(e) = std::fs::write(&path, &s.script) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        println!(
            "wrote fuzz.json + {} reproducer script(s) to {}",
            report.unexpected().len(),
            dir.display()
        );
    }
    if args.flag("json") {
        print!("{}", report.to_json().render());
    } else {
        println!("fuzz: seed {}, {} mutants, budget {}", report.seed, cfg.mutants, report.budget);
        for (label, count) in report.distribution() {
            if count > 0 {
                println!("  {label:<22} {count:>6}");
            }
            if label == "rejected-by-checker" {
                // The property-aware breakdown of what the checker caught.
                for (family, n) in report.checker_families() {
                    println!("    {family:<20} {n:>6}");
                }
            }
        }
        for c in &report.controls {
            println!(
                "control {:<38} {} ({})",
                c.name,
                if c.caught { "CAUGHT" } else { "MISSED" },
                c.detail
            );
        }
        for r in report.unexpected() {
            let s = r.shrunk.as_ref().expect("unexpected records carry a shrunk case");
            println!("unexpected mutant {}: {} — {}", r.index, r.outcome, r.detail);
            for line in s.script.lines() {
                println!("  {line}");
            }
        }
    }
    if report.all_controls_caught() && report.unexpected().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `protogen litmus`: classify protocols against the litmus suite and
/// fail unless every one matches its promised memory model.
fn litmus_cmd(args: &Args, threads: usize) -> ExitCode {
    let which = args.positional.get(1).map(String::as_str).unwrap_or("all");
    let ssps: Vec<Ssp> = if which == "all" {
        protogen_protocols::all()
    } else {
        match protocol(which) {
            Some(ssp) => vec![ssp],
            None => {
                eprintln!(
                    "unknown protocol `{which}` (try all, msi, mesi, mosi, msi-upgrade, \
                     msi-unordered, tso-cc, si-sd)"
                );
                return ExitCode::from(2);
            }
        }
    };
    let all_tests = protogen_litmus::bundled();
    let tests: Vec<_> = match args.value("tests") {
        None => all_tests,
        Some(list) => {
            let mut picked = Vec::new();
            for name in list.split(',') {
                match all_tests.iter().find(|t| t.name.eq_ignore_ascii_case(name.trim())) {
                    Some(t) => picked.push(t.clone()),
                    None => {
                        let known: Vec<&str> = all_tests.iter().map(|t| t.name.as_str()).collect();
                        eprintln!("unknown litmus test `{name}` (known: {})", known.join(", "));
                        return ExitCode::from(2);
                    }
                }
            }
            picked
        }
    };
    let mut limits = Limits::default();
    if let Some(d) = args.value("depth").and_then(|v| v.parse().ok()) {
        limits.max_states = d;
    }
    if let Some(s) = args.value("seed").and_then(|v| v.parse().ok()) {
        limits.seed = s;
    }
    let workers = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };
    match run_suite(&ssps, &tests, &limits, workers) {
        Err(e) => {
            eprintln!("litmus: {e}");
            ExitCode::FAILURE
        }
        Ok(report) => {
            if args.flag("markdown") {
                print!("{}", report.render_markdown());
            } else {
                print!("{}", report.render_text());
            }
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                eprintln!("litmus: observed memory model differs from the specification's promise");
                ExitCode::FAILURE
            }
        }
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let Some(cmd) = args.positional.first().map(String::as_str) else {
        eprintln!(
            "usage: protogen <table|verify|dot|murphi|sim|serve|sweep|fuzz|litmus|simulate|stats|compile> …"
        );
        return ExitCode::from(2);
    };
    let caches: usize = args.value("caches").and_then(|v| v.parse().ok()).unwrap_or(2);
    // 0 = "auto": the checker resolves it to available_parallelism.
    let threads: usize = args.value("threads").and_then(|v| v.parse().ok()).unwrap_or(0);

    match cmd {
        "stats" => {
            println!(
                "{:<14} {:<13} {:>12} {:>12} {:>10} {:>10}",
                "protocol", "config", "cache-states", "dir-states", "cache-arcs", "dir-arcs"
            );
            for ssp in protogen_protocols::all() {
                for (label, cfg) in [
                    ("stalling", GenConfig::stalling()),
                    ("non-stalling", GenConfig::non_stalling()),
                ] {
                    match generate(&ssp, &cfg) {
                        Ok(g) => println!(
                            "{:<14} {:<13} {:>12} {:>12} {:>10} {:>10}",
                            ssp.name,
                            label,
                            g.cache.state_count(),
                            g.directory.state_count(),
                            g.cache.transition_count(),
                            g.directory.transition_count()
                        ),
                        Err(e) => println!("{:<14} {label}: error {e}", ssp.name),
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "sweep" => sweep(&args, threads),
        "fuzz" => fuzz(&args, threads),
        "litmus" => litmus_cmd(&args, threads),
        "table" | "verify" | "dot" | "murphi" | "sim" | "serve" | "simulate" => {
            if let Some(spec) = args.value("compose") {
                let comp = match parse_compose_flag(spec) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("bad --compose: {e}");
                        return ExitCode::from(2);
                    }
                };
                return compose_cmd(cmd, &comp, &args);
            }
            let Some(name) = args.positional.get(1) else {
                eprintln!("usage: protogen {cmd} <protocol> [flags]");
                return ExitCode::from(2);
            };
            let Some(ssp) = protocol(name) else {
                eprintln!(
                    "unknown protocol `{name}` (try msi, mesi, mosi, msi-upgrade, \
                     msi-unordered, tso-cc, si-sd)"
                );
                return ExitCode::from(2);
            };
            let g = generate_or_exit(&ssp, &args);
            match cmd {
                "table" => {
                    let machine =
                        if args.value("machine") == Some("dir") { &g.directory } else { &g.cache };
                    let opts =
                        TableOptions { markdown: args.flag("markdown"), ..TableOptions::default() };
                    println!("{}", g.report);
                    println!("{}", render_table(machine, &opts));
                    ExitCode::SUCCESS
                }
                "dot" => {
                    let machine =
                        if args.value("machine") == Some("dir") { &g.directory } else { &g.cache };
                    println!("{}", to_dot(machine));
                    ExitCode::SUCCESS
                }
                "murphi" => {
                    println!("{}", to_murphi(&g.cache, &g.directory, caches));
                    ExitCode::SUCCESS
                }
                "verify" => {
                    if verify(&g, &ssp, &args, caches, threads) {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                "serve" => serve_cmd(&ssp, &g, &args, caches, threads),
                _ => sim(&ssp, &g, &args, cmd == "simulate"),
            }
        }
        "compile" => {
            let Some(path) = args.positional.get(1) else {
                eprintln!("usage: protogen compile <file.pgen> [flags]");
                return ExitCode::from(2);
            };
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let ast = match protogen_dsl::parse(&src) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            // A `compose { … }` block makes this a composition source:
            // resolve the referenced protocols and run the composed
            // pipeline (table + verify) instead of the flat one.
            if !ast.compose.is_empty() {
                let comp = match build_composition(
                    &ast.name,
                    ast.compose.iter().map(|l| {
                        Ok((l.label.clone(), l.protocol.clone(), l.fanout.unwrap_or(1) as usize))
                    }),
                ) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("bad compose block in {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                let composed = compose_or_exit(&comp, &args);
                print!("{}", render_composed_table(&composed, &TableOptions::default()));
                return if verify_composed(&composed, &comp, &args) {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }
            let ssp = match protogen_dsl::lower(&ast) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let g = generate_or_exit(&ssp, &args);
            println!("{}", g.report);
            println!("{}", render_table(&g.cache, &TableOptions::default()));
            if verify(&g, &ssp, &args, caches, threads) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}
