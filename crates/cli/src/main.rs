//! `protogen` — the command-line front door to the toolchain.
//!
//! ```text
//! protogen table   <protocol> [--stalling] [--machine cache|dir] [--markdown]
//! protogen verify  <protocol> [--stalling] [--caches N] [--threads N]
//! protogen dot     <protocol> [--stalling] [--machine cache|dir]
//! protogen murphi  <protocol> [--stalling] [--caches N]
//! protogen simulate <protocol> [--stalling] [--stores PCT] [--cores N]
//! protogen stats   [--stalling]
//! protogen compile <file.pgen> [--stalling] [--caches N] [--threads N]
//! ```
//!
//! `--threads` sets the model checker's worker count (default: all
//! available cores); results are identical for every thread count.
//!
//! `<protocol>` is one of: msi, mesi, mosi, msi-upgrade, msi-unordered,
//! tso-cc.

use protogen_backend::{render_table, to_dot, to_murphi, TableOptions};
use protogen_core::{generate, GenConfig, Generated};
use protogen_mc::{McConfig, ModelChecker};
use protogen_sim::{simulate, SimConfig, Workload};
use protogen_spec::Ssp;
use std::process::ExitCode;

struct Args {
    flags: Vec<String>,
    positional: Vec<String>,
}

impl Args {
    fn parse() -> Args {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(a) = it.next() {
            if let Some(f) = a.strip_prefix("--") {
                let needs_value =
                    matches!(f, "machine" | "caches" | "stores" | "cores" | "threads");
                if needs_value {
                    let v = it.next().unwrap_or_default();
                    flags.push(format!("{f}={v}"));
                } else {
                    flags.push(f.to_string());
                }
            } else {
                positional.push(a);
            }
        }
        Args { flags, positional }
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags.iter().find_map(|f| f.strip_prefix(&format!("{name}=")))
    }
}

fn protocol(name: &str) -> Option<Ssp> {
    Some(match name {
        "msi" => protogen_protocols::msi(),
        "mesi" => protogen_protocols::mesi(),
        "mosi" => protogen_protocols::mosi(),
        "msi-upgrade" => protogen_protocols::msi_upgrade(),
        "msi-unordered" => protogen_protocols::msi_unordered(),
        "tso-cc" => protogen_protocols::tso_cc(),
        _ => return None,
    })
}

fn gen_config(args: &Args) -> GenConfig {
    if args.flag("stalling") {
        GenConfig::stalling()
    } else {
        GenConfig::non_stalling()
    }
}

fn generate_or_exit(ssp: &Ssp, args: &Args) -> Generated {
    match generate(ssp, &gen_config(args)) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("generation failed: {e}");
            std::process::exit(2);
        }
    }
}

fn verify(g: &Generated, ssp: &Ssp, n: usize, threads: usize) -> bool {
    let mut cfg = McConfig::with_caches(n);
    cfg.ordered = ssp.network_ordered;
    cfg.threads = threads;
    if ssp.name == "TSO-CC" {
        cfg.check_swmr = false;
        cfg.check_data_value = false;
    }
    let r = ModelChecker::new(&g.cache, &g.directory, cfg).run();
    println!(
        "{}: {} — {} states, {} transitions, {:.2}s on {} thread{}",
        ssp.name,
        if r.passed() { "PASSED" } else { "FAILED" },
        r.states,
        r.transitions,
        r.seconds,
        r.threads,
        if r.threads == 1 { "" } else { "s" }
    );
    if let Some(v) = &r.violation {
        println!("violation: {}", v.kind);
        for line in &v.trace {
            println!("  {line}");
        }
    }
    r.passed()
}

fn main() -> ExitCode {
    let args = Args::parse();
    let Some(cmd) = args.positional.first().map(String::as_str) else {
        eprintln!("usage: protogen <table|verify|dot|murphi|simulate|stats|compile> …");
        return ExitCode::from(2);
    };
    let caches: usize = args.value("caches").and_then(|v| v.parse().ok()).unwrap_or(2);
    // 0 = "auto": the checker resolves it to available_parallelism.
    let threads: usize = args.value("threads").and_then(|v| v.parse().ok()).unwrap_or(0);

    match cmd {
        "stats" => {
            println!(
                "{:<14} {:<13} {:>12} {:>12} {:>10} {:>10}",
                "protocol", "config", "cache-states", "dir-states", "cache-arcs", "dir-arcs"
            );
            for ssp in protogen_protocols::all() {
                for (label, cfg) in [
                    ("stalling", GenConfig::stalling()),
                    ("non-stalling", GenConfig::non_stalling()),
                ] {
                    match generate(&ssp, &cfg) {
                        Ok(g) => println!(
                            "{:<14} {:<13} {:>12} {:>12} {:>10} {:>10}",
                            ssp.name,
                            label,
                            g.cache.state_count(),
                            g.directory.state_count(),
                            g.cache.transition_count(),
                            g.directory.transition_count()
                        ),
                        Err(e) => println!("{:<14} {label}: error {e}", ssp.name),
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "table" | "verify" | "dot" | "murphi" | "simulate" => {
            let Some(name) = args.positional.get(1) else {
                eprintln!("usage: protogen {cmd} <protocol> [flags]");
                return ExitCode::from(2);
            };
            let Some(ssp) = protocol(name) else {
                eprintln!(
                    "unknown protocol `{name}` (try msi, mesi, mosi, msi-upgrade, \
                     msi-unordered, tso-cc)"
                );
                return ExitCode::from(2);
            };
            let g = generate_or_exit(&ssp, &args);
            match cmd {
                "table" => {
                    let machine =
                        if args.value("machine") == Some("dir") { &g.directory } else { &g.cache };
                    let opts =
                        TableOptions { markdown: args.flag("markdown"), ..TableOptions::default() };
                    println!("{}", g.report);
                    println!("{}", render_table(machine, &opts));
                    ExitCode::SUCCESS
                }
                "dot" => {
                    let machine =
                        if args.value("machine") == Some("dir") { &g.directory } else { &g.cache };
                    println!("{}", to_dot(machine));
                    ExitCode::SUCCESS
                }
                "murphi" => {
                    println!("{}", to_murphi(&g.cache, &g.directory, caches));
                    ExitCode::SUCCESS
                }
                "verify" => {
                    if verify(&g, &ssp, caches, threads) {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                _ => {
                    let cfg = SimConfig {
                        n_caches: args.value("cores").and_then(|v| v.parse().ok()).unwrap_or(4),
                        workload: Workload::Mixed {
                            store_pct: args
                                .value("stores")
                                .and_then(|v| v.parse().ok())
                                .unwrap_or(50),
                        },
                        ..SimConfig::default()
                    };
                    match simulate(&g.cache, &g.directory, &cfg) {
                        Ok(r) => {
                            println!(
                                "{}: {} accesses in {} cycles, avg miss latency {:.1}, \
                                 {} stall-cycles, {} messages",
                                ssp.name,
                                r.completed,
                                r.cycles,
                                r.avg_miss_latency,
                                r.stall_cycles,
                                r.messages
                            );
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("simulation failed: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
            }
        }
        "compile" => {
            let Some(path) = args.positional.get(1) else {
                eprintln!("usage: protogen compile <file.pgen> [flags]");
                return ExitCode::from(2);
            };
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let ssp = match protogen_dsl::parse_protocol(&src) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let g = generate_or_exit(&ssp, &args);
            println!("{}", g.report);
            println!("{}", render_table(&g.cache, &TableOptions::default()));
            if verify(&g, &ssp, caches, threads) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}
