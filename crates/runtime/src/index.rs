//! Precomputed arc lookup tables for the exploration hot path.
//!
//! [`select_arc`](crate::select_arc) scans every arc of the FSM linearly on
//! each event — fine for a simulator driving one block, but the model
//! checker selects arcs hundreds of millions of times. [`FsmIndex`] buckets
//! the arcs of an [`Fsm`] by `(source state, event)` once, preserving arc
//! order (first-match semantics), so a lookup touches only the candidate
//! arcs for that slot. The index is immutable after construction and holds
//! no interior mutability, so it is `Sync` and can be shared freely across
//! worker threads.

use protogen_spec::{Access, Event, Fsm, FsmStateId};

/// A dense `(state, event) → candidate arcs` table for one [`Fsm`].
///
/// Events are laid out per state as `[Load, Store, Replacement,
/// Msg(0), Msg(1), …]`; each slot holds a contiguous range of indices into
/// a flat arc-index list, in original `Fsm::arcs` order.
#[derive(Debug, Clone)]
pub struct FsmIndex {
    /// Events per state: the three accesses plus one slot per message type.
    events_per_state: usize,
    /// `slots[state * events_per_state + event]` = `(start, end)` into
    /// `arc_ids`.
    slots: Vec<(u32, u32)>,
    /// Arc indices grouped by slot, preserving declaration order within
    /// each slot.
    arc_ids: Vec<u32>,
}

fn event_offset(event: Event) -> usize {
    match event {
        Event::Access(Access::Load) => 0,
        Event::Access(Access::Store) => 1,
        Event::Access(Access::Replacement) => 2,
        Event::Msg(m) => 3 + m.as_usize(),
    }
}

impl FsmIndex {
    /// Builds the index for `fsm`.
    ///
    /// # Panics
    ///
    /// Panics with a message naming the offending arc when an arc's source
    /// state or message id is out of range for `fsm` — a malformed FSM
    /// would otherwise be silently mis-bucketed into a neighbouring
    /// state's slots.
    pub fn new(fsm: &Fsm) -> Self {
        let events_per_state = 3 + fsm.messages.len();
        let n_slots = fsm.state_count() * events_per_state;
        for (i, arc) in fsm.arcs.iter().enumerate() {
            assert!(
                arc.from.as_usize() < fsm.state_count(),
                "arc {i} leaves unknown state {} (fsm has {} states)",
                arc.from,
                fsm.state_count()
            );
            if let Event::Msg(m) = arc.event {
                assert!(
                    m.as_usize() < fsm.messages.len(),
                    "arc {i} from {} fires on unknown message {} (fsm has {} message types)",
                    arc.from,
                    m,
                    fsm.messages.len()
                );
            }
        }
        // Two passes: count arcs per slot, then fill in order.
        let mut counts = vec![0u32; n_slots];
        let slot_of = |a: &protogen_spec::Arc| -> usize {
            a.from.as_usize() * events_per_state + event_offset(a.event)
        };
        for arc in &fsm.arcs {
            counts[slot_of(arc)] += 1;
        }
        let mut slots = Vec::with_capacity(n_slots);
        let mut start = 0u32;
        for &c in &counts {
            slots.push((start, start));
            start += c;
        }
        let mut arc_ids = vec![0u32; fsm.arcs.len()];
        for (i, arc) in fsm.arcs.iter().enumerate() {
            let slot = &mut slots[slot_of(arc)];
            arc_ids[slot.1 as usize] = i as u32;
            slot.1 += 1;
        }
        FsmIndex { events_per_state, slots, arc_ids }
    }

    /// Indices (into `Fsm::arcs`) of the candidate arcs for `(state,
    /// event)`, in declaration order. Empty when the FSM has no transition
    /// for the event.
    pub fn candidates(&self, state: FsmStateId, event: Event) -> &[u32] {
        let slot = state.as_usize() * self.events_per_state + event_offset(event);
        match self.slots.get(slot) {
            Some(&(start, end)) => &self.arc_ids[start as usize..end as usize],
            None => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::{Action, Arc, ArcKind, ArcNote, Guard, MsgId};

    fn fsm_with_arcs(arcs: Vec<Arc>) -> Fsm {
        Fsm {
            protocol: "t".into(),
            machine: protogen_spec::MachineKind::Cache,
            messages: vec![
                protogen_spec::MsgDecl::new("A", protogen_spec::MsgClass::Request),
                protogen_spec::MsgDecl::new("B", protogen_spec::MsgClass::Response),
            ],
            states: vec![],
            arcs,
        }
    }

    fn arc(from: u32, event: Event, guards: Vec<Guard>) -> Arc {
        Arc {
            from: FsmStateId(from),
            event,
            guards,
            actions: vec![Action::PerformAccess],
            to: FsmStateId(from),
            kind: ArcKind::Normal,
            note: ArcNote::Ssp,
        }
    }

    #[test]
    #[should_panic(expected = "leaves unknown state")]
    fn index_rejects_arc_from_unknown_state() {
        let fsm = fsm_with_arcs(vec![arc(5, Event::Access(Access::Load), vec![])]);
        // `fsm` has no states at all, so state 5 is out of range.
        let _ = FsmIndex::new(&fsm);
    }

    #[test]
    #[should_panic(expected = "unknown message")]
    fn index_rejects_arc_on_unknown_message() {
        let mut fsm = fsm_with_arcs(vec![arc(0, Event::Msg(MsgId(7)), vec![])]);
        fsm.states = vec![protogen_spec::FsmState {
            name: "a".into(),
            kind: protogen_spec::FsmStateKind::Stable(protogen_spec::StableId(0)),
            state_sets: vec![],
            perm: protogen_spec::Perm::None,
            data_valid: false,
            merged_names: vec![],
        }];
        // Only messages 0 and 1 are declared.
        let _ = FsmIndex::new(&fsm);
    }

    #[test]
    fn index_groups_by_state_and_event_preserving_order() {
        let fsm = fsm_with_arcs(vec![
            arc(0, Event::Msg(MsgId(1)), vec![Guard::SharersNonEmpty]),
            arc(1, Event::Access(Access::Load), vec![]),
            arc(0, Event::Msg(MsgId(1)), vec![]),
            arc(0, Event::Access(Access::Store), vec![]),
        ]);
        // States vec is empty but ids 0/1 are referenced; size the index off
        // the arcs' max state to mirror real FSMs where states are present.
        let mut fsm2 = fsm.clone();
        fsm2.states = vec![
            protogen_spec::FsmState {
                name: "a".into(),
                kind: protogen_spec::FsmStateKind::Stable(protogen_spec::StableId(0)),
                state_sets: vec![],
                perm: protogen_spec::Perm::None,
                data_valid: false,
                merged_names: vec![],
            };
            2
        ];
        let idx = FsmIndex::new(&fsm2);
        // Guarded arc first, fallback second — declaration order kept.
        assert_eq!(idx.candidates(FsmStateId(0), Event::Msg(MsgId(1))), &[0, 2]);
        assert_eq!(idx.candidates(FsmStateId(1), Event::Access(Access::Load)), &[1]);
        assert_eq!(idx.candidates(FsmStateId(0), Event::Access(Access::Store)), &[3]);
        assert!(idx.candidates(FsmStateId(0), Event::Msg(MsgId(0))).is_empty());
        assert!(idx.candidates(FsmStateId(1), Event::Msg(MsgId(1))).is_empty());
    }
}
