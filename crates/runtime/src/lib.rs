//! Operational semantics for generated protocol FSMs.
//!
//! Both the model checker (`protogen-mc`) and the performance simulator
//! (`protogen-sim`) execute generated [`protogen_spec::Fsm`]s through this
//! crate, so the machine that is verified is exactly the machine that is
//! simulated.
//!
//! The runtime models one cache block (coherence protocols are specified
//! per block, §IV-A): a [`CacheBlock`] per cache, one [`DirEntry`], and
//! [`Msg`] values travelling between them.
//!
//! # Example
//!
//! ```
//! use protogen_runtime::{CacheBlock, NodeId};
//!
//! let block = CacheBlock::new();
//! assert_eq!(block.state.as_usize(), 0); // initial state I
//! assert_eq!(NodeId(2).as_usize(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coverage;
mod exec;
mod index;
mod msg;
mod state;

pub use coverage::{MachineRole, MachineTag, PairSet, StateEventPair};
pub use exec::{
    apply, apply_into, select_arc, select_arc_indexed, ApplyOutcome, ExecError, MachineCtx,
};
pub use index::FsmIndex;
pub use msg::{Msg, NodeId, Val};
pub use state::{CacheBlock, DirEntry};
