//! Arc selection (guard evaluation) and action application.

use crate::msg::{Msg, NodeId, Val};
use crate::state::{CacheBlock, DirEntry};
use protogen_spec::{
    Access, AckSrc, Action, Arc, ArcKind, DataSrc, Dst, Event, Fsm, FsmStateId, Guard, ReqField,
};
use std::error::Error;
use std::fmt;

/// Errors raised while executing an FSM. Any of these indicates a bug in
/// the generated protocol (or the harness), never a legal protocol state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A send needed the block's data but the copy is invalid.
    MissingData(String),
    /// An action needed the triggering message but the event was an access.
    MissingMsg(String),
    /// A send was addressed to the owner but no owner is recorded.
    NoOwner(String),
    /// A deferred-obligation slot index was out of range.
    BadSlot(String),
    /// A load was performed on a block without valid data.
    LoadWithoutData(String),
}

impl ExecError {
    /// Whether the action failed against the *system state* (no owner
    /// recorded, no valid data to send or read) rather than against the
    /// machine's own structure. State errors are protocol-correctness
    /// violations a model checker should report as caught protocol bugs;
    /// the rest (absent message context, bad deferred slot) are internal
    /// inconsistencies of the generated machine itself — generator bugs.
    pub fn is_state_error(&self) -> bool {
        matches!(
            self,
            ExecError::MissingData(_) | ExecError::NoOwner(_) | ExecError::LoadWithoutData(_)
        )
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingData(c) => write!(f, "send needs data the machine lacks ({c})"),
            ExecError::MissingMsg(c) => write!(f, "action needs a message context ({c})"),
            ExecError::NoOwner(c) => write!(f, "send addressed to missing owner ({c})"),
            ExecError::BadSlot(c) => write!(f, "deferred slot out of range ({c})"),
            ExecError::LoadWithoutData(c) => write!(f, "load on invalid data ({c})"),
        }
    }
}

impl Error for ExecError {}

/// The machine an arc executes against.
#[derive(Debug)]
pub enum MachineCtx<'a> {
    /// A cache controller.
    Cache {
        /// The block being driven.
        block: &'a mut CacheBlock,
        /// This cache's node id.
        self_id: NodeId,
        /// The directory's node id.
        dir_id: NodeId,
    },
    /// The directory controller.
    Dir {
        /// The directory entry being driven.
        entry: &'a mut DirEntry,
        /// The directory's node id.
        self_id: NodeId,
    },
}

/// What applying an arc did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ApplyOutcome {
    /// Messages to inject into the network, in send order.
    pub outgoing: Vec<Msg>,
    /// An access that was performed, with the value a load returned.
    pub performed: Option<(Access, Option<Val>)>,
    /// The arc was a stall: nothing happened; the event must be retried.
    pub stalled: bool,
}

impl ApplyOutcome {
    /// Resets the outcome for reuse, keeping the `outgoing` allocation —
    /// the point of [`apply_into`]'s sink-style signature.
    pub fn clear(&mut self) {
        self.outgoing.clear();
        self.performed = None;
        self.stalled = false;
    }
}

/// Selects the first arc of `fsm` out of `state` for `event` whose guards
/// all pass. Guarded SSP entries come before synthesized fallbacks in arc
/// order, so first-match gives the "else" semantics the generator relies
/// on. Returns `None` when the machine has no transition for the event —
/// for messages this means the protocol is incomplete (a generation bug the
/// model checker reports).
pub fn select_arc<'f>(
    fsm: &'f Fsm,
    state: FsmStateId,
    event: Event,
    msg: Option<&Msg>,
    cache: Option<&CacheBlock>,
    dir: Option<&DirEntry>,
) -> Option<&'f Arc> {
    fsm.arcs
        .iter()
        .filter(|a| a.from == state && a.event == event)
        .find(|a| a.guards.iter().all(|g| eval_guard(*g, fsm, msg, cache, dir)))
}

/// [`select_arc`] through a prebuilt [`crate::FsmIndex`]: same first-match
/// semantics, but only the candidate arcs for `(state, event)` are
/// examined instead of the whole arc list. This is the model checker's hot
/// path; `index` must have been built from this `fsm`.
pub fn select_arc_indexed<'f>(
    fsm: &'f Fsm,
    index: &crate::FsmIndex,
    state: FsmStateId,
    event: Event,
    msg: Option<&Msg>,
    cache: Option<&CacheBlock>,
    dir: Option<&DirEntry>,
) -> Option<&'f Arc> {
    index
        .candidates(state, event)
        .iter()
        .map(|&i| &fsm.arcs[i as usize])
        .find(|a| a.guards.iter().all(|g| eval_guard(*g, fsm, msg, cache, dir)))
}

fn eval_guard(
    g: Guard,
    fsm: &Fsm,
    msg: Option<&Msg>,
    cache: Option<&CacheBlock>,
    dir: Option<&DirEntry>,
) -> bool {
    let ack_count = msg.and_then(|m| m.ack_count).unwrap_or(0);
    match g {
        Guard::AckCountIsZero => ack_count == 0,
        Guard::AckCountNonZero => ack_count > 0,
        Guard::AcksComplete | Guard::AcksIncomplete => {
            let Some(c) = cache else { return false };
            let complete = match msg {
                Some(m) if fsm.msg(m.mtype).carries_ack_count => {
                    // A response carrying the expected count: complete when
                    // the early acknowledgments already cover it
                    // (footnote 2 of the paper).
                    m.ack_count.unwrap_or(0) == c.acks_received
                }
                Some(_) => {
                    // An acknowledgment: complete when it is the last one
                    // and the expected count is known.
                    c.acks_expected == Some(c.acks_received + 1)
                }
                None => false,
            };
            if g == Guard::AcksComplete {
                complete
            } else {
                !complete
            }
        }
        _ => {
            let Some(d) = dir else { return false };
            let Some(m) = msg else { return false };
            let req = m.req;
            match g {
                Guard::ReqIsOwner => d.owner == Some(req),
                Guard::ReqIsNotOwner => d.owner != Some(req),
                Guard::ReqInSharers => d.is_sharer(req),
                Guard::ReqNotInSharers => !d.is_sharer(req),
                Guard::ReqIsLastSharer => d.sharers == (1 << req.0),
                Guard::ReqIsNotLastSharer => d.sharers != (1 << req.0),
                Guard::SharersEmpty => d.sharers == 0,
                Guard::SharersNonEmpty => d.sharers != 0,
                Guard::NoSharersExceptReq => d.sharer_count_except(req) == 0,
                Guard::SomeSharersExceptReq => d.sharer_count_except(req) > 0,
                _ => unreachable!("cache guards handled above"),
            }
        }
    }
}

/// Applies `arc` to the machine, producing outgoing messages and the
/// access performed, if any.
///
/// `store_value` is the value a store writes when one is performed (the
/// harness chooses it; the model checker uses a bounded ghost counter).
///
/// # Errors
///
/// Returns an [`ExecError`] when the arc's actions are inconsistent with
/// the machine's runtime state — always a protocol or generator bug.
pub fn apply(
    fsm: &Fsm,
    arc: &Arc,
    msg: Option<&Msg>,
    machine: MachineCtx<'_>,
    store_value: Val,
) -> Result<ApplyOutcome, ExecError> {
    let mut out = ApplyOutcome::default();
    apply_into(fsm, arc, msg, machine, store_value, &mut out)?;
    Ok(out)
}

/// [`apply`] writing into a caller-owned [`ApplyOutcome`] instead of
/// allocating a fresh one — the model checker's hot path reuses one
/// outcome (and its `outgoing` buffer) per worker across millions of
/// transitions. The outcome is cleared on entry; on error it holds
/// whatever was produced before the failure and must not be interpreted.
pub fn apply_into(
    fsm: &Fsm,
    arc: &Arc,
    msg: Option<&Msg>,
    mut machine: MachineCtx<'_>,
    store_value: Val,
    out: &mut ApplyOutcome,
) -> Result<(), ExecError> {
    out.clear();
    if arc.kind == ArcKind::Stall {
        out.stalled = true;
        return Ok(());
    }
    let ctx = || format!("{} state {}", fsm.machine, fsm.state(arc.from).name);

    for action in &arc.actions {
        match (action, &mut machine) {
            (Action::Send(sp), m) => {
                build_sends_into(fsm, sp, msg, &*m, &ctx, &mut out.outgoing)?;
            }
            (Action::PerformAccess, MachineCtx::Cache { block, .. }) => {
                // On an access event this performs that access; on a message
                // event it completes the pending transaction's access.
                let access = match arc.event {
                    Event::Access(a) => a,
                    Event::Msg(_) => match block.pending.take() {
                        Some(a) => a,
                        None => continue, // nothing pending (drained zombie)
                    },
                };
                let loaded = match access {
                    Access::Load => {
                        let v = block.data.ok_or_else(|| ExecError::LoadWithoutData(ctx()))?;
                        Some(v)
                    }
                    Access::Store => {
                        block.data = Some(store_value);
                        None
                    }
                    Access::Replacement => None,
                };
                out.performed = Some((access, loaded));
            }
            (Action::SetExpectedAcksFromMsg, MachineCtx::Cache { block, .. }) => {
                let m = msg.ok_or_else(|| ExecError::MissingMsg(ctx()))?;
                block.acks_expected = Some(m.ack_count.unwrap_or(0));
            }
            (Action::IncAcksReceived, MachineCtx::Cache { block, .. }) => {
                block.acks_received += 1;
            }
            (Action::ResetAcks, MachineCtx::Cache { block, .. }) => {
                block.acks_received = 0;
                block.acks_expected = None;
            }
            (Action::CopyDataFromMsg, MachineCtx::Cache { block, .. }) => {
                let m = msg.ok_or_else(|| ExecError::MissingMsg(ctx()))?;
                block.data = Some(m.data.ok_or_else(|| ExecError::MissingData(ctx()))?);
            }
            (Action::CopyDataFromMsg, MachineCtx::Dir { entry, .. }) => {
                let m = msg.ok_or_else(|| ExecError::MissingMsg(ctx()))?;
                entry.data = m.data.ok_or_else(|| ExecError::MissingData(ctx()))?;
            }
            (Action::InvalidateData, MachineCtx::Cache { block, .. }) => {
                block.data = None;
            }
            (Action::RecordChainReq, MachineCtx::Cache { block, .. }) => {
                let m = msg.ok_or_else(|| ExecError::MissingMsg(ctx()))?;
                block.chain_slots.push((m.req, m.ack_count.unwrap_or(0)));
            }
            (Action::RecordChainReq, MachineCtx::Dir { entry, .. }) => {
                let m = msg.ok_or_else(|| ExecError::MissingMsg(ctx()))?;
                let captured = entry.sharer_count_except(m.req);
                entry.chain_slots.push((m.req, captured));
            }
            (Action::SetOwnerToReq, MachineCtx::Dir { entry, .. }) => {
                let m = msg.ok_or_else(|| ExecError::MissingMsg(ctx()))?;
                entry.owner = Some(m.req);
            }
            (Action::ClearOwner, MachineCtx::Dir { entry, .. }) => {
                entry.owner = None;
            }
            (Action::AddReqToSharers, MachineCtx::Dir { entry, .. }) => {
                let m = msg.ok_or_else(|| ExecError::MissingMsg(ctx()))?;
                entry.add_sharer(m.req);
            }
            (Action::AddOwnerToSharers, MachineCtx::Dir { entry, .. }) => {
                if let Some(o) = entry.owner {
                    entry.add_sharer(o);
                }
            }
            (Action::RemoveReqFromSharers, MachineCtx::Dir { entry, .. }) => {
                let m = msg.ok_or_else(|| ExecError::MissingMsg(ctx()))?;
                entry.remove_sharer(m.req);
            }
            (Action::ClearSharers, MachineCtx::Dir { entry, .. }) => {
                entry.sharers = 0;
            }
            // Actions on the wrong machine are rejected by SSP validation;
            // reaching here is a generator bug.
            (a, _) => {
                return Err(ExecError::MissingMsg(format!("{a} on wrong machine at {}", ctx())));
            }
        }
    }

    // Transition and canonicalize.
    match machine {
        MachineCtx::Cache { block, .. } => {
            // Record the pending access when an access event launches a
            // transaction (an access arc without PerformAccess).
            if let Event::Access(a) = arc.event {
                let performed_now = out.performed.is_some();
                if !performed_now && arc.to != arc.from {
                    block.pending = Some(a);
                }
            }
            block.state = arc.to;
            let target = fsm.state(arc.to);
            let slots = target.transient().map_or(0, |m| m.deferred_slots());
            block.chain_slots.truncate(slots);
            if target.is_stable() {
                block.acks_received = 0;
                block.acks_expected = None;
                if !target.data_valid {
                    block.data = None;
                }
            }
        }
        MachineCtx::Dir { entry, .. } => {
            entry.state = arc.to;
            let target = fsm.state(arc.to);
            let slots = target.transient().map_or(0, |m| m.deferred_slots());
            entry.chain_slots.truncate(slots);
        }
    }
    Ok(())
}

fn build_sends_into(
    _fsm: &Fsm,
    sp: &protogen_spec::SendSpec,
    msg: Option<&Msg>,
    machine: &MachineCtx<'_>,
    ctx: &dyn Fn() -> String,
    out: &mut Vec<Msg>,
) -> Result<(), ExecError> {
    let (self_id, dir_id, slots): (NodeId, NodeId, &[(NodeId, u8)]) = match machine {
        MachineCtx::Cache { block, self_id, dir_id } => (*self_id, *dir_id, &block.chain_slots),
        MachineCtx::Dir { entry, self_id } => (*self_id, *self_id, &entry.chain_slots),
    };
    let slot_of_dst = match sp.dst {
        Dst::ChainReq(i) => Some(i),
        _ => None,
    };
    let req = match sp.req {
        ReqField::SelfNode => self_id,
        ReqField::FromMsg => msg.ok_or_else(|| ExecError::MissingMsg(ctx()))?.req,
        ReqField::Chain(i) => slots.get(i).ok_or_else(|| ExecError::BadSlot(ctx()))?.0,
    };
    let data = match sp.data {
        None => None,
        Some(DataSrc::FromMsg) => Some(
            msg.ok_or_else(|| ExecError::MissingMsg(ctx()))?
                .data
                .ok_or_else(|| ExecError::MissingData(ctx()))?,
        ),
        Some(DataSrc::OwnBlock) => match machine {
            MachineCtx::Cache { block, .. } => {
                Some(block.data.ok_or_else(|| ExecError::MissingData(ctx()))?)
            }
            MachineCtx::Dir { entry, .. } => Some(entry.data),
        },
    };
    let ack_count = match sp.ack_count {
        None => None,
        Some(AckSrc::Zero) => Some(0),
        Some(AckSrc::FromMsg) => {
            Some(msg.ok_or_else(|| ExecError::MissingMsg(ctx()))?.ack_count.unwrap_or(0))
        }
        Some(AckSrc::Captured) => {
            let i = slot_of_dst.ok_or_else(|| ExecError::BadSlot(ctx()))?;
            Some(slots.get(i).ok_or_else(|| ExecError::BadSlot(ctx()))?.1)
        }
        Some(AckSrc::SharersExceptReqCount) => match machine {
            MachineCtx::Dir { entry, .. } => Some(entry.sharer_count_except(req)),
            MachineCtx::Cache { .. } => {
                return Err(ExecError::MissingMsg(format!("sharer count at {}", ctx())))
            }
        },
    };

    let push = |dst: NodeId, out: &mut Vec<Msg>| {
        out.push(Msg { mtype: sp.msg, src: self_id, dst, req, ack_count, data });
    };
    match sp.dst {
        Dst::Dir => push(dir_id, out),
        Dst::Req => push(msg.ok_or_else(|| ExecError::MissingMsg(ctx()))?.req, out),
        Dst::Sender => push(msg.ok_or_else(|| ExecError::MissingMsg(ctx()))?.src, out),
        Dst::ChainReq(i) => {
            push(slots.get(i).ok_or_else(|| ExecError::BadSlot(ctx()))?.0, out);
        }
        Dst::Owner => match machine {
            MachineCtx::Dir { entry, .. } => {
                push(entry.owner.ok_or_else(|| ExecError::NoOwner(ctx()))?, out);
            }
            MachineCtx::Cache { .. } => return Err(ExecError::NoOwner(ctx())),
        },
        // Iterate the sharer bitmask directly: the `sharers_except` helper
        // allocates a Vec per call, which this path cannot afford.
        Dst::SharersExceptReq => match machine {
            MachineCtx::Dir { entry, .. } => {
                for i in 0u8..8 {
                    if entry.sharers & (1u8 << i) != 0 && i != req.0 {
                        push(NodeId(i), out);
                    }
                }
            }
            MachineCtx::Cache { .. } => return Err(ExecError::NoOwner(ctx())),
        },
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::{ArcNote, MsgClass, MsgDecl, MsgId};

    fn data_msg_fsm() -> Fsm {
        Fsm {
            protocol: "t".into(),
            machine: protogen_spec::MachineKind::Cache,
            messages: vec![
                MsgDecl::new("Data", MsgClass::Response).with_data().with_ack_count(),
                MsgDecl::new("Inv_Ack", MsgClass::Response),
            ],
            states: vec![
                protogen_spec::FsmState {
                    name: "I".into(),
                    kind: protogen_spec::FsmStateKind::Stable(protogen_spec::StableId(0)),
                    state_sets: vec![],
                    perm: protogen_spec::Perm::None,
                    data_valid: false,
                    merged_names: vec![],
                },
                protogen_spec::FsmState {
                    name: "M".into(),
                    kind: protogen_spec::FsmStateKind::Stable(protogen_spec::StableId(1)),
                    state_sets: vec![],
                    perm: protogen_spec::Perm::ReadWrite,
                    data_valid: true,
                    merged_names: vec![],
                },
            ],
            arcs: vec![],
        }
    }

    fn msg(mtype: u16, acks: Option<u8>, data: Option<u8>) -> Msg {
        Msg {
            mtype: MsgId(mtype),
            src: NodeId(1),
            dst: NodeId(0),
            req: NodeId(1),
            ack_count: acks,
            data,
        }
    }

    #[test]
    fn acks_complete_counts_early_acknowledgments() {
        let fsm = data_msg_fsm();
        let mut block = CacheBlock::new();
        block.acks_received = 2;
        // Data carrying count 2: the two early acks already cover it.
        let m = msg(0, Some(2), Some(7));
        assert!(eval_guard(Guard::AcksComplete, &fsm, Some(&m), Some(&block), None));
        // Count 3: one ack still outstanding.
        let m = msg(0, Some(3), Some(7));
        assert!(eval_guard(Guard::AcksIncomplete, &fsm, Some(&m), Some(&block), None));
        // A final Inv_Ack: complete only when expected is known.
        let m = msg(1, None, None);
        assert!(!eval_guard(Guard::AcksComplete, &fsm, Some(&m), Some(&block), None));
        block.acks_expected = Some(3);
        assert!(eval_guard(Guard::AcksComplete, &fsm, Some(&m), Some(&block), None));
    }

    #[test]
    fn apply_copies_data_performs_store_and_canonicalizes() {
        let fsm = data_msg_fsm();
        let mut block = CacheBlock::new();
        block.pending = Some(Access::Store);
        let arc = Arc {
            from: FsmStateId(0),
            event: Event::Msg(MsgId(0)),
            guards: vec![],
            actions: vec![Action::CopyDataFromMsg, Action::PerformAccess, Action::ResetAcks],
            to: FsmStateId(1),
            kind: ArcKind::Normal,
            note: ArcNote::Step2,
        };
        let m = msg(0, Some(0), Some(7));
        let out = apply(
            &fsm,
            &arc,
            Some(&m),
            MachineCtx::Cache { block: &mut block, self_id: NodeId(0), dir_id: NodeId(3) },
            9,
        )
        .unwrap();
        assert_eq!(out.performed, Some((Access::Store, None)));
        assert_eq!(block.data, Some(9)); // the store overwrote the copy
        assert_eq!(block.state, FsmStateId(1));
        assert!(block.pending.is_none());
    }

    #[test]
    fn entering_invalid_stable_state_drops_data() {
        let fsm = data_msg_fsm();
        let mut block = CacheBlock::new();
        block.data = Some(4);
        block.state = FsmStateId(1);
        let arc = Arc {
            from: FsmStateId(1),
            event: Event::Msg(MsgId(1)),
            guards: vec![],
            actions: vec![],
            to: FsmStateId(0),
            kind: ArcKind::Normal,
            note: ArcNote::Ssp,
        };
        let m = msg(1, None, None);
        apply(
            &fsm,
            &arc,
            Some(&m),
            MachineCtx::Cache { block: &mut block, self_id: NodeId(0), dir_id: NodeId(3) },
            0,
        )
        .unwrap();
        assert_eq!(block.data, None);
    }

    #[test]
    fn stall_arcs_do_nothing() {
        let fsm = data_msg_fsm();
        let mut block = CacheBlock::new();
        let arc = Arc {
            from: FsmStateId(0),
            event: Event::Msg(MsgId(0)),
            guards: vec![],
            actions: vec![],
            to: FsmStateId(0),
            kind: ArcKind::Stall,
            note: ArcNote::Case2,
        };
        let m = msg(0, None, Some(1));
        let out = apply(
            &fsm,
            &arc,
            Some(&m),
            MachineCtx::Cache { block: &mut block, self_id: NodeId(0), dir_id: NodeId(3) },
            0,
        )
        .unwrap();
        assert!(out.stalled);
        assert_eq!(block, CacheBlock::new());
    }

    #[test]
    fn dir_record_chain_captures_sharer_count() {
        let mut fsm = data_msg_fsm();
        // A transient state with one deferred-obligation slot, so the slot
        // recorded on the way in survives the transition.
        fsm.states.push(protogen_spec::FsmState {
            name: "MS_D_M".into(),
            kind: protogen_spec::FsmStateKind::Transient(protogen_spec::TransientMeta {
                own_from: protogen_spec::StableId(0),
                own_to: protogen_spec::StableId(1),
                wait_tag: "D".into(),
                chain: vec![protogen_spec::ChainLink {
                    forward: MsgId(0),
                    logical_to: protogen_spec::StableId(1),
                    has_deferred_response: true,
                }],
            }),
            state_sets: vec![],
            perm: protogen_spec::Perm::None,
            data_valid: false,
            merged_names: vec![],
        });
        let mut entry = DirEntry::new(0);
        entry.add_sharer(NodeId(0));
        entry.add_sharer(NodeId(2));
        let arc = Arc {
            from: FsmStateId(0),
            event: Event::Msg(MsgId(0)),
            guards: vec![],
            actions: vec![Action::RecordChainReq],
            to: FsmStateId(2),
            kind: ArcKind::Normal,
            note: ArcNote::Case2,
        };
        let m = msg(0, None, Some(1));
        apply(&fsm, &arc, Some(&m), MachineCtx::Dir { entry: &mut entry, self_id: NodeId(3) }, 0)
            .unwrap();
        // Requestor is n1; sharers {n0, n2} minus n1 = 2 captured.
        assert_eq!(entry.chain_slots, vec![(NodeId(1), 2)]);
        assert_eq!(entry.state, FsmStateId(2));
    }
}
