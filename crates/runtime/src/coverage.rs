//! Control-coverage bookkeeping shared by the model checker and the
//! simulator.
//!
//! Both tools drive the same generated FSMs through [`crate::select_arc`];
//! recording every `(machine, state, event)` dispatch they attempt makes
//! the two comparable: a simulated run under an ordered network must never
//! observe a pair the exhaustive model checker did not visit at the same
//! cache count (the conformance property tested in
//! `tests/sim_conformance.rs`).
//!
//! With hierarchical composition (DESIGN.md §12) a system runs several
//! protocol levels at once, so a tag is no longer just "cache or
//! directory": it is a *(level, role)* pair. Level 0 is the leaf protocol;
//! level `j`'s directory side is physically hosted by the level-`j+1`
//! nodes. Flat single-level tools use the [`MachineTag::CACHE`] /
//! [`MachineTag::DIRECTORY`] constants, which keep the old ordering
//! (caches sort before directories) so existing pair sets are unchanged.

use protogen_spec::{Event, FsmStateId};
use std::collections::BTreeSet;

/// Which side of a protocol level a machine implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MachineRole {
    /// A cache controller (the requesting side of its level).
    Cache,
    /// A directory controller (the serving side of its level).
    Directory,
}

/// Which controller observed a pair: a role at a protocol level.
///
/// In a flat system there is exactly one level, so every tag is
/// [`MachineTag::CACHE`] or [`MachineTag::DIRECTORY`]. In a composed
/// system (`protogen-mc`'s hierarchical checker) the level says which
/// protocol of the composition the machine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineTag {
    /// Protocol level, leaf-first: 0 is the leaf protocol.
    pub level: u8,
    /// Cache or directory side of that level.
    pub role: MachineRole,
}

impl MachineTag {
    /// The flat (single-level) cache controller tag.
    pub const CACHE: MachineTag = MachineTag { level: 0, role: MachineRole::Cache };

    /// The flat (single-level) directory controller tag.
    pub const DIRECTORY: MachineTag = MachineTag { level: 0, role: MachineRole::Directory };

    /// The cache-side tag of protocol level `level`.
    pub fn cache(level: u8) -> MachineTag {
        MachineTag { level, role: MachineRole::Cache }
    }

    /// The directory-side tag of protocol level `level`.
    pub fn directory(level: u8) -> MachineTag {
        MachineTag { level, role: MachineRole::Directory }
    }
}

/// One observed dispatch: this machine, in this FSM state, saw this event.
pub type StateEventPair = (MachineTag, FsmStateId, Event);

/// The set of `(machine, state, event)` pairs a run dispatched on.
///
/// A `BTreeSet` so that unions merge deterministically regardless of the
/// order shards or cycles contributed their observations.
pub type PairSet = BTreeSet<StateEventPair>;

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::Access;

    #[test]
    fn pair_sets_union_and_compare_as_sets() {
        let mut sim = PairSet::new();
        sim.insert((MachineTag::CACHE, FsmStateId(0), Event::Access(Access::Load)));
        let mut mc = sim.clone();
        mc.insert((MachineTag::DIRECTORY, FsmStateId(1), Event::Access(Access::Store)));
        assert!(sim.is_subset(&mc));
        assert!(!mc.is_subset(&sim));
    }

    #[test]
    fn tags_order_by_level_then_role() {
        assert!(MachineTag::CACHE < MachineTag::DIRECTORY);
        assert!(MachineTag::DIRECTORY < MachineTag::cache(1));
        assert!(MachineTag::cache(1) < MachineTag::directory(1));
    }
}
