//! Control-coverage bookkeeping shared by the model checker and the
//! simulator.
//!
//! Both tools drive the same generated FSMs through [`crate::select_arc`];
//! recording every `(machine, state, event)` dispatch they attempt makes
//! the two comparable: a simulated run under an ordered network must never
//! observe a pair the exhaustive model checker did not visit at the same
//! cache count (the conformance property tested in
//! `tests/sim_conformance.rs`).

use protogen_spec::{Event, FsmStateId};
use std::collections::BTreeSet;

/// Which controller observed a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MachineTag {
    /// A cache controller.
    Cache,
    /// The directory controller.
    Directory,
}

/// One observed dispatch: this machine, in this FSM state, saw this event.
pub type StateEventPair = (MachineTag, FsmStateId, Event);

/// The set of `(machine, state, event)` pairs a run dispatched on.
///
/// A `BTreeSet` so that unions merge deterministically regardless of the
/// order shards or cycles contributed their observations.
pub type PairSet = BTreeSet<StateEventPair>;

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::Access;

    #[test]
    fn pair_sets_union_and_compare_as_sets() {
        let mut sim = PairSet::new();
        sim.insert((MachineTag::Cache, FsmStateId(0), Event::Access(Access::Load)));
        let mut mc = sim.clone();
        mc.insert((MachineTag::Directory, FsmStateId(1), Event::Access(Access::Store)));
        assert!(sim.is_subset(&mc));
        assert!(!mc.is_subset(&sim));
    }
}
