//! Messages and node identities.

use protogen_spec::MsgId;
use std::fmt;

/// A node in the system: caches are `0..n_caches`, the directory is
/// `n_caches`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u8);

impl NodeId {
    /// Returns the id as an index.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A data value. The value domain is kept tiny so the model checker's state
/// space stays bounded (the standard Murϕ discipline).
pub type Val = u8;

/// One coherence message in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Msg {
    /// Message type.
    pub mtype: MsgId,
    /// Physical sender.
    pub src: NodeId,
    /// Destination.
    pub dst: NodeId,
    /// The requestor on whose behalf the message travels (for forwarded
    /// requests this is the cache that initiated the racing transaction,
    /// not the directory that forwarded it).
    pub req: NodeId,
    /// Acknowledgment count, when the message type carries one.
    pub ack_count: Option<u8>,
    /// Block data, when the message type carries it.
    pub data: Option<Val>,
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}→{} req={}", self.mtype, self.src, self.dst, self.req)?;
        if let Some(a) = self.ack_count {
            write!(f, " acks={a}")?;
        }
        if let Some(d) = self.data {
            write!(f, " data={d}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_route_and_payload() {
        let m = Msg {
            mtype: MsgId(3),
            src: NodeId(0),
            dst: NodeId(2),
            req: NodeId(0),
            ack_count: Some(2),
            data: Some(1),
        };
        let s = m.to_string();
        assert!(s.contains("n0→n2"));
        assert!(s.contains("acks=2"));
        assert!(s.contains("data=1"));
    }
}
