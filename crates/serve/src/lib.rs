//! A sharded, multi-threaded in-memory coherent cache service that runs
//! the *verified* generated FSMs live.
//!
//! Every other runtime in this workspace (model checker, simulator,
//! fuzzer) is lockstep-deterministic. This crate executes the same
//! [`protogen_spec::Fsm`]s — through the same [`protogen_runtime`]
//! semantics (`FsmIndex` arc selection, `apply_into` application) — as a
//! real concurrent service: one worker thread per cache, one per
//! directory shard, connected by the bounded lock-free mailboxes in
//! [`mailbox`], driven by the workload generators from `protogen-sim`.
//!
//! # The coverage envelope
//!
//! What makes the service a *verified* component rather than a parallel
//! reimplementation is the conformance contract: every live dispatch
//! records its `(machine, state, event)` pair, and the run's
//! [`ServeReport::coverage`] must be a subset of the pair coverage an
//! exhaustive model-checker run collected at the same cache count
//! ([`checked_envelope`]). The argument (DESIGN.md §10): blocks are
//! independent protocol instances; each block's machines are each owned
//! by exactly one thread and exchange messages over per-edge FIFO
//! channels, so the per-block projection of any live execution is an
//! interleaving of atomic FSM steps over an ordered network — precisely
//! an execution the exhaustive checker explored. A live pair the checker
//! never visited ([`ServeReport::escapes`]) therefore means the service
//! left the verified envelope — a hard failure, never a statistic.
//!
//! ```
//! use protogen_serve::{checked_envelope, serve, ServeConfig};
//!
//! let ssp = protogen_protocols::msi();
//! let g = protogen_core::generate(&ssp, &protogen_core::GenConfig::non_stalling()).unwrap();
//! let mut cfg = ServeConfig::new(2);
//! cfg.total_ops = 2_000;
//! let report = serve(&g.cache, &g.directory, &cfg).unwrap();
//! let mut mc = protogen_mc::McConfig::with_caches(2);
//! mc.ordered = ssp.network_ordered;
//! let envelope = checked_envelope(&g.cache, &g.directory, mc).unwrap();
//! assert!(report.escapes(&envelope).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod mailbox;
mod service;

pub use fault::{FaultConfig, FaultPlan, FaultStats};
pub use service::serve;

use protogen_mc::{McConfig, ModelChecker};
use protogen_runtime::{MachineRole, PairSet, StateEventPair};
use protogen_sim::{Histogram, Json, Workload};
use protogen_spec::{Access, Event, Fsm};
use std::error::Error;
use std::fmt;

/// Configuration for one service run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Cache worker threads (1..=8, the sharer-bitmask width).
    pub n_caches: usize,
    /// Directory shard threads; shard `addr % dir_shards` owns a block.
    pub dir_shards: usize,
    /// Distinct block addresses.
    pub n_addrs: usize,
    /// Total operations across all cores (split evenly, rounded up).
    pub total_ops: usize,
    /// The access pattern driving the cores.
    pub workload: Workload,
    /// Workload expansion seed.
    pub seed: u64,
    /// Per-edge mailbox capacity in messages.
    pub mailbox_cap: usize,
    /// Wall-clock budget; exceeding it stops the run with
    /// [`StopReason::Deadline`] (the liveness backstop — a quiescent
    /// finish always beats it).
    pub max_seconds: f64,
    /// Deterministic fault injection (`None` — the default — runs the
    /// perfect-world service). See [`FaultConfig`].
    pub faults: Option<FaultConfig>,
}

impl ServeConfig {
    /// Defaults for `n_caches` workers: one directory shard, 8 blocks,
    /// 100k ops of uniform 50%-store traffic, seed 1, 1024-message
    /// mailboxes, 60 s deadline.
    pub fn new(n_caches: usize) -> ServeConfig {
        ServeConfig {
            n_caches,
            dir_shards: 1,
            n_addrs: 8,
            total_ops: 100_000,
            workload: Workload::Uniform { store_pct: 50 },
            seed: 1,
            mailbox_cap: 1024,
            max_seconds: 60.0,
            faults: None,
        }
    }

    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        let fail = |m: String| Err(ServeError::Config(m));
        if !(1..=8).contains(&self.n_caches) {
            return fail(format!("n_caches must be 1..=8, got {}", self.n_caches));
        }
        if self.dir_shards == 0 || self.n_caches + self.dir_shards > 64 {
            return fail(format!(
                "dir_shards must be 1..={}, got {}",
                64 - self.n_caches,
                self.dir_shards
            ));
        }
        if self.n_addrs == 0 {
            return fail("n_addrs must be at least 1".into());
        }
        if self.mailbox_cap < 16 {
            return fail(format!("mailbox_cap must be at least 16, got {}", self.mailbox_cap));
        }
        if !self.max_seconds.is_finite() || self.max_seconds <= 0.0 {
            return fail(format!(
                "max_seconds must be positive and finite, got {}",
                self.max_seconds
            ));
        }
        Ok(())
    }
}

/// Why a service run failed. Any variant other than [`ServeError::Config`]
/// and [`ServeError::Deadline`] indicates a protocol or harness bug — the
/// same severity the model checker assigns to its violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The configuration or workload was rejected before any thread ran.
    Config(String),
    /// The model-checker envelope run itself failed (violation or
    /// resource limit), so there is no coverage set to check against.
    Envelope(String),
    /// A machine received a message its FSM has no transition for — an
    /// incomplete protocol.
    UnexpectedMessage(String),
    /// Applying an arc failed against the runtime state (see
    /// [`protogen_runtime::ExecError`]).
    Exec(String),
    /// The run failed to quiesce within [`ServeConfig::max_seconds`].
    /// Internal only: [`serve`] converts a deadline into an `Ok` report
    /// with [`StopReason::Deadline`], so callers can still inspect the
    /// partial measurements; the CLI maps it to its own exit code.
    Deadline(String),
    /// A worker thread panicked. The panic is isolated per worker
    /// (`catch_unwind`), the rest of the fleet drains, and the run fails
    /// with this structured error instead of aborting the process.
    WorkerPanic {
        /// Which worker (e.g. `cache 2`, `dir shard 0`).
        worker: String,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "bad configuration: {m}"),
            ServeError::Envelope(m) => write!(f, "coverage envelope unavailable: {m}"),
            ServeError::UnexpectedMessage(m) => write!(f, "unexpected message: {m}"),
            ServeError::Exec(m) => write!(f, "execution error: {m}"),
            ServeError::Deadline(m) => write!(f, "deadline exceeded: {m}"),
            ServeError::WorkerPanic { worker, message } => {
                write!(f, "worker panic: {worker} panicked: {message}")
            }
        }
    }
}

impl Error for ServeError {}

/// Runs the exhaustive model checker with pair-coverage collection forced
/// on and returns the coverage set — the envelope live runs are checked
/// against. `cfg` should use the same cache count as the service run and
/// the protocol's network-ordering assumption.
///
/// # Errors
///
/// [`ServeError::Envelope`] when the checker reports a violation or stops
/// on a resource limit: a partial envelope would produce false escapes.
pub fn checked_envelope(cache: &Fsm, dir: &Fsm, mut cfg: McConfig) -> Result<PairSet, ServeError> {
    cfg.collect_pair_coverage = true;
    let r = ModelChecker::new(cache, dir, cfg).run();
    if !r.passed() {
        let why = match &r.violation {
            Some(v) => format!("violation: {}", v.kind),
            None => "resource limit hit before exhaustion".into(),
        };
        return Err(ServeError::Envelope(format!(
            "envelope run failed after {} states: {why}",
            r.states
        )));
    }
    // SAFETY OF THE EXPECT: `collect_pair_coverage` was set four lines
    // up, and `ModelChecker::run` always populates `coverage` when it is
    // set — a `None` here is a checker bug, not a runtime condition.
    Ok(r.coverage.expect("collect_pair_coverage was set"))
}

/// Why a service run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Clean quiescence: every core finished its schedule, every message
    /// was applied, and any planned fault recovery completed.
    Quiesced,
    /// The wall-clock backstop fired before quiescence. The report holds
    /// partial measurements; the CLI exits non-zero.
    Deadline,
    /// The run quiesced but its fault plan did not complete (e.g. a
    /// crash point past the end of the schedule never triggered). The
    /// fault experiment is inconclusive; the CLI exits non-zero.
    Fault,
}

impl StopReason {
    /// The stable label used in JSON output and CI greps.
    pub fn label(self) -> &'static str {
        match self {
            StopReason::Quiesced => "quiesced",
            StopReason::Deadline => "deadline",
            StopReason::Fault => "fault",
        }
    }
}

/// What a completed service run measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Cache workers.
    pub n_caches: usize,
    /// Directory shards.
    pub dir_shards: usize,
    /// Distinct blocks.
    pub n_addrs: usize,
    /// Operations completed (always the full schedule on `Ok`).
    pub ops: u64,
    /// Operations that completed locally without a transaction.
    pub hits: u64,
    /// Operations that launched a coherence transaction.
    pub misses: u64,
    /// Coherence messages applied across all nodes.
    pub messages: u64,
    /// Wall-clock seconds from thread launch to quiescence.
    pub seconds: f64,
    /// Wall-clock latency of each miss transaction, in nanoseconds.
    pub miss_latency: Histogram,
    /// Peak queued-message depth observed per node (caches first, then
    /// directory shards).
    pub peak_queue_depths: Vec<usize>,
    /// Every `(machine, state, event)` pair the run dispatched on.
    pub coverage: PairSet,
    /// Why the run stopped (clean quiescence, the deadline backstop, or
    /// an unfinished fault plan).
    pub stop_reason: StopReason,
    /// Fault/recovery counters; `Some` exactly when fault injection was
    /// configured.
    pub faults: Option<FaultStats>,
}

impl ServeReport {
    /// Completed operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.ops as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// The live pairs the exhaustive checker never visited. Non-empty
    /// means the service escaped the verified envelope — callers must
    /// treat this as a hard failure.
    pub fn escapes(&self, checked: &PairSet) -> Vec<StateEventPair> {
        self.coverage.difference(checked).copied().collect()
    }

    /// Renders the report (and the escape verdict) as the deterministic
    /// JSON document the CLI and CI consume. `cache`/`dir` supply state
    /// and message names for the escape labels.
    pub fn to_json(&self, cache: &Fsm, dir: &Fsm, escapes: &[StateEventPair]) -> Json {
        let mut doc = Json::obj([
            ("caches", Json::U64(self.n_caches as u64)),
            ("dir_shards", Json::U64(self.dir_shards as u64)),
            ("addrs", Json::U64(self.n_addrs as u64)),
            ("ops", Json::U64(self.ops)),
            ("hits", Json::U64(self.hits)),
            ("misses", Json::U64(self.misses)),
            ("messages", Json::U64(self.messages)),
            ("seconds", Json::F64(self.seconds)),
            ("ops_per_sec", Json::F64(self.ops_per_sec())),
            ("coverage_pairs", Json::U64(self.coverage.len() as u64)),
            ("escapes", Json::U64(escapes.len() as u64)),
            (
                "escaped_pairs",
                Json::Arr(escapes.iter().map(|p| Json::Str(pair_label(cache, dir, p))).collect()),
            ),
            ("stop_reason", Json::Str(self.stop_reason.label().into())),
        ]);
        if let Some(fs) = &self.faults {
            doc.push(
                "faults",
                Json::obj([
                    ("planned_crashes", Json::U64(fs.planned_crashes)),
                    ("crashes_completed", Json::U64(fs.crashes_completed)),
                    ("recovery_writebacks", Json::U64(fs.recovery_writebacks)),
                    ("lines_lost", Json::U64(fs.lines_lost)),
                    ("delays_injected", Json::U64(fs.delays_injected)),
                    ("stalls_injected", Json::U64(fs.stalls_injected)),
                    ("squeeze_parks", Json::U64(fs.squeeze_parks)),
                ]),
            );
        }
        if !self.miss_latency.is_empty() {
            doc.push("miss_p50_ns", Json::U64(self.miss_latency.percentile(50.0)));
            doc.push("miss_p95_ns", Json::U64(self.miss_latency.percentile(95.0)));
            doc.push("miss_p99_ns", Json::U64(self.miss_latency.percentile(99.0)));
            doc.push("miss_max_ns", Json::U64(self.miss_latency.max()));
        }
        doc.push(
            "peak_queue_depths",
            Json::Arr(self.peak_queue_depths.iter().map(|&d| Json::U64(d as u64)).collect()),
        );
        doc
    }
}

/// Human-readable label for a coverage pair, e.g. `cache M × Fwd_GetS`.
pub fn pair_label(cache: &Fsm, dir: &Fsm, pair: &StateEventPair) -> String {
    let (tag, state, event) = pair;
    let (who, fsm) = match tag.role {
        MachineRole::Cache => ("cache", cache),
        MachineRole::Directory => ("dir", dir),
    };
    let ev = match event {
        Event::Access(Access::Load) => "Load".to_string(),
        Event::Access(Access::Store) => "Store".to_string(),
        Event::Access(Access::Replacement) => "Replacement".to_string(),
        Event::Msg(m) => fsm.msg(*m).name.clone(),
    };
    format!("{who} {} × {ev}", fsm.state(*state).name)
}
