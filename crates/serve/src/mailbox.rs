//! Bounded lock-free per-edge mailboxes with bitset ready-set wakeups.
//!
//! The service's nodes (cache workers and directory shards) are connected
//! point-to-point: one [`Ring`] per ordered `(src, dst)` pair, owned by a
//! [`Fabric`]. Each ring is single-producer/single-consumer by
//! construction — node `src` is driven by exactly one thread, and only
//! that thread pushes into `ring(src, dst)`; only `dst`'s thread pops —
//! so a ring needs no locks, just release/acquire publication on its
//! head/tail counters. A [`Msg`] plus its block address packs into two
//! `u64` payload words, stored through plain relaxed atomics (the
//! tail/head handoff orders them), which keeps the whole fabric free of
//! `unsafe` while staying wait-free on both ends.
//!
//! Per-edge FIFO is exactly the network order the model checker verifies:
//! an ordered protocol needs per-`(src, dst)` FIFO *per block*, and a
//! ring's FIFO over all blocks restricts to FIFO on every block's
//! subsequence.
//!
//! Wakeups use one [`ReadySet`] bitmask per destination: a producer sets
//! its source bit *after* publishing the message (`fetch_or`, release), a
//! consumer `swap`s the mask to zero (acquire) and drains the flagged
//! rings. A bit set after the swap is observed by the next swap, so no
//! wakeup is lost.

use protogen_runtime::{Msg, NodeId};
use protogen_spec::MsgId;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A message in flight through the fabric: the wire [`Msg`] plus the
/// block address it concerns (the runtime models one block; the service
/// multiplexes many independent blocks over the same FSMs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// The block the message concerns.
    pub addr: u32,
    /// The coherence message itself.
    pub msg: Msg,
}

const ACK_PRESENT: u64 = 1;
const DATA_PRESENT: u64 = 2;

impl Envelope {
    /// Packs the envelope into two `u64` payload words.
    pub fn pack(self) -> (u64, u64) {
        let m = self.msg;
        let w0 = self.addr as u64
            | (m.mtype.0 as u64) << 32
            | (m.src.0 as u64) << 48
            | (m.dst.0 as u64) << 56;
        let mut flags = 0u64;
        if m.ack_count.is_some() {
            flags |= ACK_PRESENT;
        }
        if m.data.is_some() {
            flags |= DATA_PRESENT;
        }
        let w1 = m.req.0 as u64
            | flags << 8
            | (m.ack_count.unwrap_or(0) as u64) << 16
            | (m.data.unwrap_or(0) as u64) << 24;
        (w0, w1)
    }

    /// Inverse of [`Envelope::pack`].
    pub fn unpack(w0: u64, w1: u64) -> Envelope {
        let flags = (w1 >> 8) & 0xff;
        Envelope {
            addr: w0 as u32,
            msg: Msg {
                mtype: MsgId((w0 >> 32) as u16),
                src: NodeId((w0 >> 48) as u8),
                dst: NodeId((w0 >> 56) as u8),
                req: NodeId(w1 as u8),
                ack_count: (flags & ACK_PRESENT != 0).then_some((w1 >> 16) as u8),
                data: (flags & DATA_PRESENT != 0).then_some((w1 >> 24) as u8),
            },
        }
    }
}

/// A bounded single-producer/single-consumer ring of packed envelopes.
///
/// The SPSC contract is by convention, not by type: exactly one thread
/// may call [`Ring::push`] and exactly one may call [`Ring::pop`] at any
/// time (the [`Fabric`] topology guarantees this — each edge has one
/// producing and one consuming node, each driven by one thread).
/// Violating the convention can lose or duplicate messages but is still
/// free of undefined behaviour: every slot access is an atomic.
#[derive(Debug)]
pub struct Ring {
    slots: Vec<(AtomicU64, AtomicU64)>,
    /// Next slot to pop; monotonically increasing, owned by the consumer.
    head: AtomicUsize,
    /// Next slot to push; monotonically increasing, owned by the producer.
    tail: AtomicUsize,
}

impl Ring {
    /// A ring holding at most `cap` envelopes (`cap >= 1`).
    pub fn new(cap: usize) -> Ring {
        assert!(cap >= 1, "ring capacity must be at least 1");
        Ring {
            slots: (0..cap).map(|_| (AtomicU64::new(0), AtomicU64::new(0))).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Capacity in envelopes.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Envelopes currently queued. Exact for the two owning threads, a
    /// snapshot for anyone else.
    pub fn len(&self) -> usize {
        self.tail.load(Ordering::Acquire).wrapping_sub(self.head.load(Ordering::Acquire))
    }

    /// Whether the ring is empty (same snapshot semantics as [`Ring::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free slots as seen by the producer. Monotone for the producer: only
    /// the consumer frees slots, so space never shrinks under the
    /// producer's feet between its own pushes — which is what makes
    /// check-then-push (`space() >= n` then `n` pushes) sound.
    pub fn space(&self) -> usize {
        self.capacity() - self.len()
    }

    /// Producer side: enqueues `env`, or returns it when the ring is full.
    pub fn push(&self, env: Envelope) -> Result<(), Envelope> {
        let tail = self.tail.load(Ordering::Relaxed); // producer owns tail
        let head = self.head.load(Ordering::Acquire); // consumer freed up to here
        if tail.wrapping_sub(head) >= self.slots.len() {
            return Err(env);
        }
        let (w0, w1) = env.pack();
        let slot = &self.slots[tail % self.slots.len()];
        slot.0.store(w0, Ordering::Relaxed);
        slot.1.store(w1, Ordering::Relaxed);
        // Publish: the consumer's acquire-load of `tail` orders the payload
        // stores above before its payload loads.
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: dequeues the oldest envelope, if any.
    pub fn pop(&self) -> Option<Envelope> {
        let head = self.head.load(Ordering::Relaxed); // consumer owns head
        let tail = self.tail.load(Ordering::Acquire); // producer published up to here
        if head == tail {
            return None;
        }
        let slot = &self.slots[head % self.slots.len()];
        let w0 = slot.0.load(Ordering::Relaxed);
        let w1 = slot.1.load(Ordering::Relaxed);
        // Free the slot: the producer's acquire-load of `head` orders the
        // payload loads above before its next overwrite.
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(Envelope::unpack(w0, w1))
    }
}

/// One wakeup bitmask per destination node: bit `src` means "ring
/// `(src, dst)` may hold messages".
#[derive(Debug)]
pub struct ReadySet(AtomicU64);

impl ReadySet {
    fn new() -> ReadySet {
        ReadySet(AtomicU64::new(0))
    }

    /// Producer side: flags `src` as having published a message.
    pub fn notify(&self, src: usize) {
        self.0.fetch_or(1 << src, Ordering::Release);
    }

    /// Consumer side: takes and clears the current mask.
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Acquire)
    }
}

/// The full point-to-point interconnect: `nodes × nodes` rings plus one
/// ready-set per destination.
#[derive(Debug)]
pub struct Fabric {
    nodes: usize,
    rings: Vec<Ring>,
    ready: Vec<ReadySet>,
}

impl Fabric {
    /// A fabric over `nodes` nodes (at most 64, the ready-set width), each
    /// edge holding at most `cap` envelopes.
    pub fn new(nodes: usize, cap: usize) -> Fabric {
        assert!((1..=64).contains(&nodes), "fabric supports 1..=64 nodes, got {nodes}");
        Fabric {
            nodes,
            rings: (0..nodes * nodes).map(|_| Ring::new(cap)).collect(),
            ready: (0..nodes).map(|_| ReadySet::new()).collect(),
        }
    }

    /// Node count.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The ring for edge `(src, dst)`.
    pub fn ring(&self, src: usize, dst: usize) -> &Ring {
        &self.rings[src * self.nodes + dst]
    }

    /// Producer side: pushes onto edge `(src, dst)` and raises `dst`'s
    /// ready bit. Returns the envelope when the edge is full.
    pub fn try_send(&self, src: usize, dst: usize, env: Envelope) -> Result<(), Envelope> {
        self.ring(src, dst).push(env)?;
        self.ready[dst].notify(src);
        Ok(())
    }

    /// Consumer side: takes and clears `dst`'s ready mask.
    pub fn take_ready(&self, dst: usize) -> u64 {
        self.ready[dst].take()
    }

    /// Snapshot of the envelopes queued toward `dst` across all edges.
    pub fn inbound_len(&self, dst: usize) -> usize {
        (0..self.nodes).map(|src| self.ring(src, dst).len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(addr: u32, seq: u8) -> Envelope {
        Envelope {
            addr,
            msg: Msg {
                mtype: MsgId(seq as u16),
                src: NodeId(1),
                dst: NodeId(2),
                req: NodeId(seq),
                ack_count: None,
                data: None,
            },
        }
    }

    #[test]
    fn pack_roundtrips_every_field_combination() {
        for ack in [None, Some(0u8), Some(7)] {
            for data in [None, Some(0u8), Some(255)] {
                let e = Envelope {
                    addr: 0xDEAD_BEEF,
                    msg: Msg {
                        mtype: MsgId(513),
                        src: NodeId(3),
                        dst: NodeId(8),
                        req: NodeId(255),
                        ack_count: ack,
                        data,
                    },
                };
                let (w0, w1) = e.pack();
                assert_eq!(Envelope::unpack(w0, w1), e);
            }
        }
    }

    #[test]
    fn ring_is_fifo_and_bounded_across_wraparound() {
        let r = Ring::new(4);
        assert!(r.is_empty());
        // Fill, drain halfway, refill: exercises index wraparound.
        for round in 0u32..10 {
            for i in 0..4u8 {
                r.push(env(round, i)).unwrap();
            }
            assert_eq!(r.space(), 0);
            assert!(r.push(env(round, 9)).is_err(), "full ring must reject");
            for i in 0..4u8 {
                assert_eq!(r.pop().unwrap(), env(round, i));
            }
            assert!(r.pop().is_none());
        }
    }

    #[test]
    fn ready_set_accumulates_and_clears() {
        let f = Fabric::new(3, 2);
        f.try_send(0, 2, env(0, 0)).unwrap();
        f.try_send(1, 2, env(0, 1)).unwrap();
        assert_eq!(f.take_ready(2), 0b011);
        assert_eq!(f.take_ready(2), 0, "take clears the mask");
        assert_eq!(f.inbound_len(2), 2);
        assert_eq!(f.ring(0, 2).pop().unwrap(), env(0, 0));
        assert_eq!(f.ring(1, 2).pop().unwrap(), env(0, 1));
    }
}
