//! Deterministic fault injection for the live service.
//!
//! A [`FaultPlan`] is a *pure function* of the seed and the run's
//! topology: every fault decision — whether an edge's next message is
//! delayed and for how many passes, whether a worker stalls this window,
//! how much mailbox capacity a squeeze withholds, at which schedule
//! position a cache crashes — is derived by hashing
//! `(seed, site, sequence)` with a splitmix64 finalizer. Same seed, same
//! config ⇒ byte-identical plan (pinned by a `PartialEq` test), and a
//! replayed run injects exactly the same faults at the same logical
//! points.
//!
//! The injected faults are, by construction, faults the verified
//! envelope must tolerate (DESIGN.md §13 carries the argument per fault
//! class):
//!
//! * **Delivery delays** hold the *head* of one in-edge for a bounded
//!   number of passes. The whole edge waits behind its head, so per-edge
//!   FIFO — the ordered-channel assumption the checker verified under —
//!   is preserved; a delayed message is still counted in flight, so
//!   quiescence cannot be declared around it.
//! * **Worker stalls** are bounded sleeps — pure scheduling jitter,
//!   indistinguishable from an overloaded core.
//! * **Capacity squeezes** make a producer *believe* an output ring has
//!   fewer free slots than it does. The check becomes strictly more
//!   conservative, so the publish-after-check soundness argument is
//!   untouched; the message parks and retries, exactly like real
//!   backpressure.
//! * **Cache crashes** are graceful-evacuation crashes: the cache stops
//!   issuing, drains its outstanding transaction, writes back or
//!   invalidates every held line through ordinary `Replacement`
//!   transitions of the verified FSM, then rejoins and resumes its
//!   schedule from all-invalid state. Every recovery step is an
//!   in-envelope `(state, event)` pair, so conformance (`escapes: 0`)
//!   must survive any crash schedule.
//!
//! [`FaultConfig::unsafe_reset`] flips the crash path into a *planted
//! recovery bug* — the cache drops its lines without telling the
//! directory — used as the fuzz campaign's seventh negative control: the
//! conformance oracle must flag the run (an out-of-envelope pair or an
//! unexpected message), proving the oracle would catch a real recovery
//! bug.

/// Which faults to inject into a [`crate::serve`] run, and the seed that
/// makes the schedule replayable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for every fault decision (independent of the workload seed).
    pub seed: u64,
    /// Inject per-edge delivery delay windows (FIFO-preserving).
    pub delays: bool,
    /// Inject bounded worker stalls/jitter.
    pub stalls: bool,
    /// Inject transient mailbox-capacity squeezes.
    pub squeezes: bool,
    /// How many caches crash and recover (clamped to the cache count;
    /// caches `0..crashes` crash once each).
    pub crashes: usize,
    /// Crash at exactly this schedule position instead of the
    /// seed-derived one. A position past the end of the schedule means
    /// the crash never triggers: the run completes with its fault plan
    /// unfinished and reports [`crate::StopReason::Fault`].
    pub crash_at_op: Option<usize>,
    /// Plant the recovery bug: on crash, drop all lines *without* the
    /// write-back/invalidate traffic. This deliberately breaks coherence
    /// so the conformance oracle can prove it notices (the fuzz
    /// campaign's seeded negative control). Never set this expecting a
    /// clean run.
    pub unsafe_reset: bool,
}

impl FaultConfig {
    /// No faults at all (equivalent to `faults: None` in the config).
    pub fn none(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            delays: false,
            stalls: false,
            squeezes: false,
            crashes: 0,
            crash_at_op: None,
            unsafe_reset: false,
        }
    }

    /// The full fault matrix: delays + stalls + squeezes + one cache
    /// crash with proper recovery.
    pub fn all(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            delays: true,
            stalls: true,
            squeezes: true,
            crashes: 1,
            crash_at_op: None,
            unsafe_reset: false,
        }
    }
}

/// The splitmix64 finalizer: full-avalanche bijection on `u64`, the same
/// mixer the checker's fingerprinting uses.
fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain-separation tags so the same counter never feeds two different
/// fault decisions.
const TAG_DELAY: u64 = 0xD1;
const TAG_STALL: u64 = 0x57;
const TAG_SQUEEZE: u64 = 0x5C;
const TAG_CRASH: u64 = 0xC4;

/// The expanded, replayable fault schedule for one run. A pure function
/// of `(FaultConfig, topology)`: constructing it twice yields equal
/// plans, which is what makes fault runs seed-deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    delays: bool,
    stalls: bool,
    squeezes: bool,
    crashes: usize,
    crash_at_op: Option<usize>,
    unsafe_reset: bool,
    mailbox_cap: usize,
}

impl FaultPlan {
    /// Expands a config against the run's topology.
    pub fn expand(cfg: &FaultConfig, n_caches: usize, mailbox_cap: usize) -> FaultPlan {
        FaultPlan {
            seed: cfg.seed,
            delays: cfg.delays,
            stalls: cfg.stalls,
            squeezes: cfg.squeezes,
            crashes: cfg.crashes.min(n_caches),
            crash_at_op: cfg.crash_at_op,
            unsafe_reset: cfg.unsafe_reset,
            mailbox_cap,
        }
    }

    /// Passes the head of in-edge `src` at node `node` must wait before
    /// its `seq`-th message may be applied. Roughly 1 in 16 messages is
    /// held, for 1–7 passes — enough to shuffle cross-edge arrival orders
    /// without wedging throughput.
    pub fn delay(&self, node: usize, src: usize, seq: u64) -> u32 {
        if !self.delays {
            return 0;
        }
        let h = mix64(self.seed ^ TAG_DELAY ^ ((node as u64) << 48) ^ ((src as u64) << 32) ^ seq);
        if h % 16 == 0 {
            1 + ((h >> 8) % 7) as u32
        } else {
            0
        }
    }

    /// Microseconds node `node` sleeps in pass-window `window` (None for
    /// most windows; 20–200 µs roughly every 8th window).
    pub fn stall_us(&self, node: usize, window: u64) -> Option<u64> {
        if !self.stalls {
            return None;
        }
        let h = mix64(self.seed ^ TAG_STALL ^ ((node as u64) << 48) ^ window);
        (h % 8 == 0).then(|| 20 + (h >> 8) % 180)
    }

    /// Output-ring slots node `node` must pretend are occupied during
    /// pass-window `window` (a transient capacity squeeze; at most half
    /// the ring, so forward progress is never lost entirely).
    pub fn squeeze(&self, node: usize, window: u64) -> usize {
        if !self.squeezes {
            return 0;
        }
        let h = mix64(self.seed ^ TAG_SQUEEZE ^ ((node as u64) << 48) ^ window);
        if h % 4 == 0 {
            ((h >> 8) as usize) % (self.mailbox_cap / 2).max(1)
        } else {
            0
        }
    }

    /// The schedule position at which `cache` crashes, if it does.
    /// Derived crash points land in the middle half of the schedule so
    /// the run always exercises both pre-crash traffic and post-recovery
    /// rejoin; an explicit [`FaultConfig::crash_at_op`] is used verbatim
    /// (even past the schedule end — see its docs).
    pub fn crash_cursor(&self, cache: usize, schedule_len: usize) -> Option<usize> {
        if cache >= self.crashes {
            return None;
        }
        if let Some(at) = self.crash_at_op {
            return Some(at);
        }
        let h = mix64(self.seed ^ TAG_CRASH ^ cache as u64);
        let quarter = (schedule_len / 4).max(1);
        Some(quarter + (h as usize % (2 * quarter).max(1)))
    }

    /// How many caches this plan crashes.
    pub fn planned_crashes(&self) -> usize {
        self.crashes
    }

    /// Whether the crash path is the planted recovery bug.
    pub fn unsafe_reset(&self) -> bool {
        self.unsafe_reset
    }
}

/// Structured fault/recovery counters for a [`crate::ServeReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Cache crashes the plan scheduled.
    pub planned_crashes: u64,
    /// Crashes whose recovery (drain + flush + rejoin) completed.
    pub crashes_completed: u64,
    /// Lines evacuated through a launched `Replacement` transaction
    /// during crash recovery (clean drops complete on the spot and are
    /// not counted here).
    pub recovery_writebacks: u64,
    /// Writable lines dropped *without* write-back — nonzero only under
    /// the planted [`FaultConfig::unsafe_reset`] bug.
    pub lines_lost: u64,
    /// Messages whose delivery was delayed.
    pub delays_injected: u64,
    /// Worker stall windows actually slept.
    pub stalls_injected: u64,
    /// Commit attempts parked while a capacity squeeze was active.
    pub squeeze_parks: u64,
}

impl FaultStats {
    /// Accumulates a worker's counters into the run total.
    pub(crate) fn absorb(&mut self, other: &FaultStats) {
        self.crashes_completed += other.crashes_completed;
        self.recovery_writebacks += other.recovery_writebacks;
        self.lines_lost += other.lines_lost;
        self.delays_injected += other.delays_injected;
        self.stalls_injected += other.stalls_injected;
        self.squeeze_parks += other.squeeze_parks;
    }
}

/// Per-edge delivery-delay state for one worker (the mutable cursor the
/// immutable [`FaultPlan`] is consulted through).
#[derive(Debug, Default, Clone)]
pub(crate) struct EdgeDelay {
    /// Messages consumed from this edge so far (the delay draw's index).
    seq: u64,
    /// Remaining passes the current head is held.
    hold: u32,
    /// Whether `hold` was drawn for the current head.
    armed: bool,
}

/// Per-worker fault bookkeeping: pass/window counters, edge-delay
/// cursors, and the current squeeze. One per worker thread; all decisions
/// delegate to the shared immutable plan.
#[derive(Debug)]
pub(crate) struct FaultState {
    delays: Vec<EdgeDelay>,
    pass: u64,
    last_stall_window: u64,
    /// Output-ring slots currently withheld by an active squeeze.
    pub(crate) withheld: usize,
    pub(crate) stats: FaultStats,
}

/// Passes per stall/squeeze window (windows change every ~millisecond at
/// typical pass rates).
const WINDOW_SHIFT: u32 = 10;

impl FaultState {
    pub(crate) fn new(n_edges: usize) -> FaultState {
        FaultState {
            delays: vec![EdgeDelay::default(); n_edges],
            pass: 0,
            last_stall_window: u64::MAX,
            withheld: 0,
            stats: FaultStats::default(),
        }
    }

    /// Starts a worker pass: advances the window, applies at most one
    /// stall per window, and refreshes the active squeeze.
    pub(crate) fn begin_pass(&mut self, plan: &FaultPlan, node: usize) {
        self.pass += 1;
        let window = self.pass >> WINDOW_SHIFT;
        self.withheld = plan.squeeze(node, window);
        if window != self.last_stall_window {
            self.last_stall_window = window;
            if let Some(us) = plan.stall_us(node, window) {
                self.stats.stalls_injected += 1;
                std::thread::sleep(std::time::Duration::from_micros(us));
            }
        }
    }

    /// Whether edge `src`'s head is held by a delivery delay this pass.
    /// Draws the delay lazily per head; each held head is counted once.
    pub(crate) fn edge_held(&mut self, plan: &FaultPlan, node: usize, src: usize) -> bool {
        let d = &mut self.delays[src];
        if !d.armed {
            d.armed = true;
            d.hold = plan.delay(node, src, d.seq);
            if d.hold > 0 {
                self.stats.delays_injected += 1;
            }
        }
        if d.hold > 0 {
            d.hold -= 1;
            true
        } else {
            false
        }
    }

    /// Marks one message consumed from edge `src` (the next head gets a
    /// fresh delay draw).
    pub(crate) fn consumed(&mut self, src: usize) {
        let d = &mut self.delays[src];
        d.seq += 1;
        d.armed = false;
        d.hold = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_a_pure_function_of_seed_and_topology() {
        let cfg = FaultConfig::all(42);
        let a = FaultPlan::expand(&cfg, 4, 1024);
        let b = FaultPlan::expand(&cfg, 4, 1024);
        assert_eq!(a, b);
        // Every decision replays identically.
        for node in 0..6 {
            for src in 0..6 {
                for seq in 0..200 {
                    assert_eq!(a.delay(node, src, seq), b.delay(node, src, seq));
                }
            }
            for w in 0..50 {
                assert_eq!(a.stall_us(node, w), b.stall_us(node, w));
                assert_eq!(a.squeeze(node, w), b.squeeze(node, w));
            }
        }
        assert_eq!(a.crash_cursor(0, 1000), b.crash_cursor(0, 1000));
        // A different seed actually changes the schedule.
        let c = FaultPlan::expand(&FaultConfig::all(43), 4, 1024);
        assert_ne!(a, c);
        let differs = (0..64u64).any(|s| a.delay(0, 1, s) != c.delay(0, 1, s))
            || a.crash_cursor(0, 1000) != c.crash_cursor(0, 1000);
        assert!(differs, "seed must influence the schedule");
    }

    #[test]
    fn faults_actually_fire_and_stay_bounded() {
        let plan = FaultPlan::expand(&FaultConfig::all(7), 2, 64);
        let mut delayed = 0u32;
        for seq in 0..4096 {
            let d = plan.delay(0, 1, seq);
            assert!(d <= 7);
            delayed += (d > 0) as u32;
        }
        // ~1/16 of 4096 ≈ 256; allow wide slack but require presence.
        assert!(delayed > 64, "delays must fire ({delayed})");
        let stalls = (0..4096).filter(|&w| plan.stall_us(0, w).is_some()).count();
        assert!(stalls > 128, "stalls must fire ({stalls})");
        for w in 0..4096 {
            assert!(plan.squeeze(0, w) < 32, "squeeze bounded by half the ring");
        }
        let squeezes = (0..4096).filter(|&w| plan.squeeze(0, w) > 0).count();
        assert!(squeezes > 256, "squeezes must fire ({squeezes})");
    }

    #[test]
    fn crash_cursor_lands_in_the_middle_half() {
        for seed in 0..64 {
            let plan =
                FaultPlan::expand(&FaultConfig { crashes: 2, ..FaultConfig::all(seed) }, 4, 1024);
            for cache in 0..2 {
                let at = plan.crash_cursor(cache, 1000).unwrap();
                assert!((250..750).contains(&at), "seed {seed} cache {cache}: {at}");
            }
            assert_eq!(plan.crash_cursor(2, 1000), None);
            assert_eq!(plan.crash_cursor(3, 1000), None);
        }
    }

    #[test]
    fn explicit_crash_at_op_is_used_verbatim() {
        let cfg = FaultConfig { crash_at_op: Some(123_456), ..FaultConfig::all(1) };
        let plan = FaultPlan::expand(&cfg, 2, 1024);
        assert_eq!(plan.crash_cursor(0, 100), Some(123_456));
    }

    #[test]
    fn edge_delay_state_holds_then_releases_fifo_heads() {
        let plan = FaultPlan::expand(&FaultConfig::all(3), 2, 1024);
        let mut st = FaultState::new(4);
        // Find a (node, src, seq) that delays, then verify the state
        // machine holds for exactly that many passes and re-draws after
        // consumption.
        let mut seen_hold = false;
        for _ in 0..2000 {
            let mut passes_held = 0u32;
            while st.edge_held(&plan, 0, 1) {
                passes_held += 1;
                assert!(passes_held <= 7, "holds are bounded");
            }
            seen_hold |= passes_held > 0;
            st.consumed(1);
        }
        assert!(seen_hold, "some head must have been held");
        assert!(st.stats.delays_injected > 0);
    }
}
