//! The worker threads: cache cores, directory shards, scheduling,
//! termination, and live coverage recording.
//!
//! Every node follows the same pass structure:
//!
//! 1. **Drain**: take the ready-set mask and move every published
//!    envelope out of the bounded rings into unbounded per-edge local
//!    queues. Draining is unconditional — a node never refuses input —
//!    which is what makes the bounded rings deadlock-free: ring space at
//!    every edge is always eventually regenerated, no matter how wedged
//!    the consumer's own output side is (the producer-drains-own-inbox
//!    discipline the model checker's explorer uses under backpressure).
//! 2. **Dispatch**: for each source edge, repeatedly apply the queue
//!    head. A `Stall` arc or insufficient output-ring space *parks* the
//!    head (per-edge FIFO demands the queue waits behind it; other edges
//!    proceed independently) to be retried next pass. Application is
//!    tentative: the FSM steps a scratch copy, output space is checked,
//!    and only then is the step committed and its messages published —
//!    sound because each edge has exactly one producer, so observed free
//!    space is monotone until that producer itself pushes.
//! 3. **Issue** (cache workers only): with no transaction outstanding,
//!    issue the next scheduled access — completing hits locally,
//!    launching a transaction otherwise (one outstanding access per
//!    core, the discipline `crates/sim` models).
//!
//! Termination is quiescence detection: a global in-flight message
//! counter (incremented at publish, decremented only after the receiving
//! apply has published its own follow-ups) plus a count of cores done
//! issuing. Once every core is done and the counter reads zero — both
//! `SeqCst`, so a stale zero cannot be observed — the system can never
//! make progress again, and the run is complete. A protocol deadlock
//! (impossible inside the verified envelope) would instead trip the
//! wall-clock deadline.

use crate::fault::{FaultPlan, FaultState, FaultStats};
use crate::mailbox::{Envelope, Fabric};
use crate::{ServeConfig, ServeError, ServeReport, StopReason};
use protogen_runtime::{
    apply_into, select_arc_indexed, ApplyOutcome, CacheBlock, DirEntry, FsmIndex, MachineCtx,
    MachineTag, Msg, NodeId, PairSet,
};
use protogen_sim::{Histogram, Op};
use protogen_spec::{Access, ArcKind, Event, Fsm, FsmStateId, MsgId, Perm};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Dense per-worker coverage bitset: one bit per `(state, event)` slot,
/// laid out exactly like [`FsmIndex`]'s table. Recording a dispatch is a
/// single OR on the hot path; the sets merge into the shared [`PairSet`]
/// representation once, at join time.
struct DenseCoverage {
    events_per_state: usize,
    bits: Vec<u64>,
}

fn event_offset(event: Event) -> usize {
    match event {
        Event::Access(Access::Load) => 0,
        Event::Access(Access::Store) => 1,
        Event::Access(Access::Replacement) => 2,
        Event::Msg(m) => 3 + m.as_usize(),
    }
}

impl DenseCoverage {
    fn new(fsm: &Fsm) -> DenseCoverage {
        let events_per_state = 3 + fsm.messages.len();
        let slots = fsm.state_count() * events_per_state;
        DenseCoverage { events_per_state, bits: vec![0; slots.div_ceil(64)] }
    }

    fn record(&mut self, state: FsmStateId, event: Event) {
        let slot = state.as_usize() * self.events_per_state + event_offset(event);
        self.bits[slot / 64] |= 1 << (slot % 64);
    }

    fn merge_into(&self, tag: MachineTag, out: &mut PairSet) {
        for (word_ix, &word) in self.bits.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let slot = word_ix * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                let state = FsmStateId((slot / self.events_per_state) as u32);
                let event = match slot % self.events_per_state {
                    0 => Event::Access(Access::Load),
                    1 => Event::Access(Access::Store),
                    2 => Event::Access(Access::Replacement),
                    o => Event::Msg(MsgId((o - 3) as u16)),
                };
                out.insert((tag, state, event));
            }
        }
    }
}

/// State shared by every worker thread for one run.
struct Shared<'f> {
    cache_fsm: &'f Fsm,
    dir_fsm: &'f Fsm,
    cache_idx: FsmIndex,
    dir_idx: FsmIndex,
    fabric: Fabric,
    n_caches: usize,
    dir_shards: usize,
    n_addrs: usize,
    /// Messages published but not yet applied (rings + local queues).
    in_flight: AtomicU64,
    /// Cores that have completed their whole schedule.
    cores_done: AtomicUsize,
    /// Set on quiescence, failure, or deadline: everyone exits.
    done: AtomicBool,
    /// First failure wins; later ones are dropped.
    failure: Mutex<Option<ServeError>>,
    deadline: Instant,
    /// The expanded fault schedule, when fault injection is on. Immutable
    /// and consulted through each worker's own [`FaultState`] cursors.
    plan: Option<FaultPlan>,
}

impl<'f> Shared<'f> {
    /// Topology index a message's FSM-level destination routes to:
    /// caches map to themselves, the directory id fans out to the shard
    /// owning the block.
    fn route(&self, dst: NodeId, addr: u32) -> usize {
        let d = dst.as_usize();
        if d >= self.n_caches {
            self.n_caches + addr as usize % self.dir_shards
        } else {
            d
        }
    }

    /// Whether every message in `outgoing` fits its output ring right
    /// now. Sound as a pre-commit check: this thread is the only producer
    /// on each of those rings, so space cannot shrink before the pushes.
    ///
    /// `withheld` is the slot count an active capacity squeeze pretends
    /// is occupied (0 without fault injection). Squeezes only make this
    /// check *more* conservative, so the publish-after-check argument —
    /// and [`Shared::publish`]'s expect — are untouched by them.
    fn outgoing_fits(&self, src: usize, addr: u32, outgoing: &[Msg], withheld: usize) -> bool {
        'msgs: for (i, m) in outgoing.iter().enumerate() {
            let d = self.route(m.dst, addr);
            for prev in &outgoing[..i] {
                if self.route(prev.dst, addr) == d {
                    continue 'msgs; // edge already counted at its first message
                }
            }
            let needed = outgoing[i..].iter().filter(|n| self.route(n.dst, addr) == d).count();
            if self.fabric.ring(src, d).space().saturating_sub(withheld) < needed {
                return false;
            }
        }
        true
    }

    /// Publishes `outgoing`, counting each message in flight *before* it
    /// becomes visible. Callers must have checked [`Shared::outgoing_fits`].
    fn publish(&self, src: usize, addr: u32, outgoing: &[Msg]) {
        if outgoing.is_empty() {
            return;
        }
        self.in_flight.fetch_add(outgoing.len() as u64, Ordering::SeqCst);
        for m in outgoing {
            let dst = self.route(m.dst, addr);
            self.fabric
                .try_send(src, dst, Envelope { addr, msg: *m })
                .expect("output space was checked before commit");
        }
    }

    fn fail(&self, e: ServeError) {
        // A worker can panic while holding this lock; the slot is a plain
        // Option, so recovering the poisoned guard is sound — first
        // failure still wins.
        let mut slot = self.failure.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(e);
        }
        self.done.store(true, Ordering::SeqCst);
    }

    /// Quiescence: no core will issue again and no message is anywhere.
    /// `in_flight` increments happen-before the matching decrement, and
    /// both sides are `SeqCst`, so reading 0 here after `cores_done`
    /// reached `n_caches` means the system is truly drained.
    fn quiescent(&self) -> bool {
        self.cores_done.load(Ordering::SeqCst) == self.n_caches
            && self.in_flight.load(Ordering::SeqCst) == 0
    }
}

/// What one worker measured, merged into the [`ServeReport`] at join.
struct WorkerOut {
    tag: MachineTag,
    coverage: DenseCoverage,
    miss_latency_ns: Vec<u64>,
    hits: u64,
    misses: u64,
    messages: u64,
    peak_queue_depth: usize,
    fault: FaultStats,
}

enum StepOutcome {
    /// The head was applied and removed.
    Applied,
    /// The head must wait (stall arc or full output edge); the edge's
    /// queue is blocked behind it until the next pass.
    Parked,
    /// The run failed; the worker unwinds.
    Failed,
}

/// Spin/yield/sleep ladder for passes that made no progress.
fn idle_backoff(idle: u32) {
    if idle < 64 {
        std::hint::spin_loop();
    } else if idle < 4096 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(Duration::from_micros(100));
    }
}

/// Moves every published envelope for `topo` out of the rings into the
/// local per-edge queues.
fn drain(sh: &Shared, topo: usize, queues: &mut [VecDeque<Envelope>]) {
    let mut mask = sh.fabric.take_ready(topo);
    while mask != 0 {
        let src = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        let ring = sh.fabric.ring(src, topo);
        while let Some(env) = ring.pop() {
            queues[src].push_back(env);
        }
    }
}

/// The crash-recovery state machine a planned cache crash walks through.
/// Recovery uses only ordinary `Replacement` transitions of the verified
/// FSM, so every step stays inside the checked envelope (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrashPhase {
    /// No crash yet (or none planned).
    Normal,
    /// Crash point reached: stopped issuing, draining the outstanding
    /// transaction.
    Draining,
    /// Evacuating held lines one block at a time via `Replacement`.
    Flushing { addr: u32 },
    /// Recovery finished (or the crash point was never reached); the
    /// cache has rejoined and resumes its schedule.
    Done,
}

struct CacheWorker<'s, 'f> {
    sh: &'s Shared<'f>,
    /// This cache's id: FSM identity `NodeId(id)` and topology index.
    id: usize,
    schedule: Vec<Op>,
    cursor: usize,
    /// The launched transaction: block address and issue instant.
    outstanding: Option<(u32, Instant)>,
    declared_done: bool,
    blocks: Vec<CacheBlock>,
    scratch: CacheBlock,
    outcome: ApplyOutcome,
    queues: Vec<VecDeque<Envelope>>,
    out: WorkerOut,
    fault: FaultState,
    /// Schedule position this cache crashes at, from the fault plan.
    crash_at: Option<usize>,
    phase: CrashPhase,
}

impl<'s, 'f> CacheWorker<'s, 'f> {
    fn new(sh: &'s Shared<'f>, id: usize, schedule: Vec<Op>) -> Self {
        let crash_at = sh.plan.as_ref().and_then(|p| p.crash_cursor(id, schedule.len()));
        CacheWorker {
            sh,
            id,
            schedule,
            cursor: 0,
            outstanding: None,
            declared_done: false,
            blocks: vec![CacheBlock::new(); shared_addrs(sh)],
            scratch: CacheBlock::new(),
            outcome: ApplyOutcome::default(),
            queues: (0..sh.fabric.nodes()).map(|_| VecDeque::new()).collect(),
            out: WorkerOut {
                tag: MachineTag::CACHE,
                coverage: DenseCoverage::new(sh.cache_fsm),
                miss_latency_ns: Vec::new(),
                hits: 0,
                misses: 0,
                messages: 0,
                peak_queue_depth: 0,
                fault: FaultStats::default(),
            },
            fault: FaultState::new(sh.fabric.nodes()),
            crash_at,
            phase: CrashPhase::Normal,
        }
    }

    /// Applies the head of edge `src`'s queue, if any.
    fn step_msg(&mut self, src: usize) -> StepOutcome {
        let Some(&env) = self.queues[src].front() else {
            return StepOutcome::Parked; // empty edge: nothing to do
        };
        let sh = self.sh;
        let addr = env.addr;
        let block = &self.blocks[addr as usize];
        let event = Event::Msg(env.msg.mtype);
        self.out.coverage.record(block.state, event);
        let arc = select_arc_indexed(
            sh.cache_fsm,
            &sh.cache_idx,
            block.state,
            event,
            Some(&env.msg),
            Some(block),
            None,
        );
        let Some(arc) = arc else {
            sh.fail(ServeError::UnexpectedMessage(format!(
                "cache {} in state {} cannot handle {} for block {addr}",
                self.id,
                sh.cache_fsm.state(block.state).name,
                env.msg
            )));
            return StepOutcome::Failed;
        };
        if arc.kind == ArcKind::Stall {
            return StepOutcome::Parked;
        }
        self.scratch.clone_from(block);
        let ctx = MachineCtx::Cache {
            block: &mut self.scratch,
            self_id: NodeId(self.id as u8),
            dir_id: NodeId(sh.n_caches as u8),
        };
        if let Err(e) = apply_into(sh.cache_fsm, arc, Some(&env.msg), ctx, 0, &mut self.outcome) {
            sh.fail(ServeError::Exec(format!("cache {} applying {}: {e}", self.id, env.msg)));
            return StepOutcome::Failed;
        }
        if !sh.outgoing_fits(self.id, addr, &self.outcome.outgoing, self.fault.withheld) {
            if self.fault.withheld > 0 {
                self.fault.stats.squeeze_parks += 1;
            }
            return StepOutcome::Parked; // retry once the edge drains
        }
        std::mem::swap(&mut self.blocks[addr as usize], &mut self.scratch);
        sh.publish(self.id, addr, &self.outcome.outgoing);
        sh.in_flight.fetch_sub(1, Ordering::SeqCst);
        self.queues[src].pop_front();
        self.out.messages += 1;
        if self.outcome.performed.is_some() {
            if let Some((oaddr, t0)) = self.outstanding {
                if oaddr == addr {
                    // Evacuation transactions complete here too, but only
                    // demand misses count toward miss latency.
                    if !matches!(self.phase, CrashPhase::Flushing { .. }) {
                        self.out.miss_latency_ns.push(t0.elapsed().as_nanos() as u64);
                    }
                    self.outstanding = None;
                }
            }
        }
        StepOutcome::Applied
    }

    /// Issues scheduled accesses until a transaction launches, an access
    /// must wait, or the hit budget for this pass is spent. Returns
    /// whether anything completed or launched.
    fn try_issue(&mut self) -> bool {
        let sh = self.sh;
        let mut progressed = false;
        let mut hit_budget = 1024u32;
        while self.outstanding.is_none() && hit_budget > 0 {
            if matches!(self.phase, CrashPhase::Normal)
                && self.crash_at.is_some_and(|at| self.cursor >= at)
            {
                break; // the crash point is due; advance_crash takes over
            }
            let Some(&op) = self.schedule.get(self.cursor) else { break };
            let addr = op.addr;
            let block = &self.blocks[addr as usize];
            let event = Event::Access(op.access);
            self.out.coverage.record(block.state, event);
            let arc = select_arc_indexed(
                sh.cache_fsm,
                &sh.cache_idx,
                block.state,
                event,
                None,
                Some(block),
                None,
            );
            let Some(arc) = arc else {
                // No transition: the access needs nothing (e.g. replacing
                // an invalid block) — complete it on the spot.
                self.cursor += 1;
                self.out.hits += 1;
                hit_budget -= 1;
                progressed = true;
                continue;
            };
            if arc.kind == ArcKind::Stall {
                break; // retry after the blocking chain resolves
            }
            self.scratch.clone_from(block);
            let ctx = MachineCtx::Cache {
                block: &mut self.scratch,
                self_id: NodeId(self.id as u8),
                dir_id: NodeId(sh.n_caches as u8),
            };
            if let Err(e) = apply_into(sh.cache_fsm, arc, None, ctx, 0, &mut self.outcome) {
                sh.fail(ServeError::Exec(format!(
                    "cache {} issuing {:?} on block {addr}: {e}",
                    self.id, op.access
                )));
                return progressed;
            }
            if !sh.outgoing_fits(self.id, addr, &self.outcome.outgoing, self.fault.withheld) {
                if self.fault.withheld > 0 {
                    self.fault.stats.squeeze_parks += 1;
                }
                break; // output backpressure: retry next pass
            }
            std::mem::swap(&mut self.blocks[addr as usize], &mut self.scratch);
            sh.publish(self.id, addr, &self.outcome.outgoing);
            self.cursor += 1;
            progressed = true;
            if self.outcome.performed.is_some() {
                self.out.hits += 1;
                hit_budget -= 1;
            } else {
                self.out.misses += 1;
                self.outstanding = Some((addr, Instant::now()));
            }
        }
        progressed
    }

    /// Advances the crash state machine at pass boundaries.
    fn advance_crash(&mut self) {
        match self.phase {
            CrashPhase::Normal => {
                let Some(at) = self.crash_at else { return };
                if self.cursor >= at {
                    self.phase = CrashPhase::Draining;
                } else if self.cursor == self.schedule.len() && self.outstanding.is_none() {
                    // The crash point lies past the schedule end, so the
                    // plan can never complete. Finish the run and let
                    // `serve` report [`StopReason::Fault`]
                    // (`crashes_completed` stays short of the plan).
                    self.phase = CrashPhase::Done;
                }
            }
            CrashPhase::Draining => {
                if self.outstanding.is_some() {
                    return; // the in-flight transaction drains first
                }
                if self.sh.plan.as_ref().is_some_and(|p| p.unsafe_reset()) {
                    // Planted recovery bug: drop every line *without*
                    // telling the directory. It still believes this cache
                    // holds them, so the conformance oracle must flag the
                    // run (the fuzz campaign's negative control).
                    let fsm = self.sh.cache_fsm;
                    self.fault.stats.lines_lost += self
                        .blocks
                        .iter()
                        .filter(|b| fsm.state(b.state).perm != Perm::None)
                        .count() as u64;
                    self.blocks.fill(CacheBlock::new());
                    self.phase = CrashPhase::Done;
                    self.fault.stats.crashes_completed += 1;
                } else {
                    self.phase = CrashPhase::Flushing { addr: 0 };
                }
            }
            CrashPhase::Flushing { .. } | CrashPhase::Done => {}
        }
    }

    /// Drives crash recovery: evacuates every block through ordinary
    /// `Replacement` transitions — the same verified arcs a capacity
    /// replacement would use — launching at most one transaction at a
    /// time (the one-outstanding discipline the issue path follows).
    /// Blocks with nothing to evacuate complete on the spot.
    fn try_flush(&mut self) -> bool {
        let sh = self.sh;
        let mut progressed = false;
        while self.outstanding.is_none() {
            let CrashPhase::Flushing { addr } = self.phase else { break };
            if addr as usize >= self.blocks.len() {
                self.phase = CrashPhase::Done;
                self.fault.stats.crashes_completed += 1;
                progressed = true;
                break;
            }
            let block = &self.blocks[addr as usize];
            let event = Event::Access(Access::Replacement);
            self.out.coverage.record(block.state, event);
            let arc = select_arc_indexed(
                sh.cache_fsm,
                &sh.cache_idx,
                block.state,
                event,
                None,
                Some(block),
                None,
            );
            let Some(arc) = arc else {
                // Nothing to evacuate (the block is already invalid).
                self.phase = CrashPhase::Flushing { addr: addr + 1 };
                progressed = true;
                continue;
            };
            if arc.kind == ArcKind::Stall {
                break; // a blocking chain holds this block; retry next pass
            }
            self.scratch.clone_from(block);
            let ctx = MachineCtx::Cache {
                block: &mut self.scratch,
                self_id: NodeId(self.id as u8),
                dir_id: NodeId(sh.n_caches as u8),
            };
            if let Err(e) = apply_into(sh.cache_fsm, arc, None, ctx, 0, &mut self.outcome) {
                sh.fail(ServeError::Exec(format!(
                    "cache {} evacuating block {addr} during crash recovery: {e}",
                    self.id
                )));
                return progressed;
            }
            if !sh.outgoing_fits(self.id, addr, &self.outcome.outgoing, self.fault.withheld) {
                if self.fault.withheld > 0 {
                    self.fault.stats.squeeze_parks += 1;
                }
                break; // output backpressure: retry next pass
            }
            std::mem::swap(&mut self.blocks[addr as usize], &mut self.scratch);
            sh.publish(self.id, addr, &self.outcome.outgoing);
            progressed = true;
            self.phase = CrashPhase::Flushing { addr: addr + 1 };
            if self.outcome.performed.is_none() {
                self.fault.stats.recovery_writebacks += 1;
                self.outstanding = Some((addr, Instant::now()));
            }
        }
        progressed
    }

    fn run(mut self) -> WorkerOut {
        self.run_loop();
        self.out.fault = self.fault.stats;
        self.out
    }

    fn run_loop(&mut self) {
        let sh = self.sh;
        let nodes = sh.fabric.nodes();
        let mut idle = 0u32;
        let mut ticks = 0u64;
        loop {
            if sh.done.load(Ordering::SeqCst) {
                break;
            }
            if let Some(plan) = sh.plan.as_ref() {
                self.fault.begin_pass(plan, self.id);
            }
            let mut progress = false;
            drain(sh, self.id, &mut self.queues);
            for src in 0..nodes {
                loop {
                    if self.queues[src].is_empty() {
                        break;
                    }
                    if let Some(plan) = sh.plan.as_ref() {
                        if self.fault.edge_held(plan, self.id, src) {
                            break; // head delayed; the edge waits behind it
                        }
                    }
                    match self.step_msg(src) {
                        StepOutcome::Applied => {
                            self.fault.consumed(src);
                            progress = true;
                        }
                        StepOutcome::Parked => break,
                        StepOutcome::Failed => return,
                    }
                }
            }
            self.advance_crash();
            progress |= match self.phase {
                CrashPhase::Flushing { .. } => self.try_flush(),
                CrashPhase::Normal | CrashPhase::Done => self.try_issue(),
                CrashPhase::Draining => false,
            };
            if !self.declared_done
                && self.cursor == self.schedule.len()
                && self.outstanding.is_none()
                && (self.crash_at.is_none() || self.phase == CrashPhase::Done)
            {
                self.declared_done = true;
                sh.cores_done.fetch_add(1, Ordering::SeqCst);
            }
            let depth: usize = self.queues.iter().map(VecDeque::len).sum();
            self.out.peak_queue_depth = self.out.peak_queue_depth.max(depth);
            ticks += 1;
            if progress {
                idle = 0;
                if ticks % 8192 == 0 && Instant::now() >= sh.deadline {
                    sh.fail(deadline_error(sh));
                    break;
                }
                continue;
            }
            idle += 1;
            if idle % 64 == 0 {
                if sh.quiescent() {
                    sh.done.store(true, Ordering::SeqCst);
                    break;
                }
                if Instant::now() >= sh.deadline {
                    sh.fail(deadline_error(sh));
                    break;
                }
            }
            idle_backoff(idle);
        }
    }
}

struct DirWorker<'s, 'f> {
    sh: &'s Shared<'f>,
    /// Shard index; topology index is `n_caches + shard`.
    shard: usize,
    entries: Vec<DirEntry>,
    scratch: DirEntry,
    outcome: ApplyOutcome,
    queues: Vec<VecDeque<Envelope>>,
    out: WorkerOut,
    fault: FaultState,
}

impl<'s, 'f> DirWorker<'s, 'f> {
    fn new(sh: &'s Shared<'f>, shard: usize) -> Self {
        DirWorker {
            sh,
            shard,
            entries: vec![DirEntry::new(0); shared_addrs(sh)],
            scratch: DirEntry::new(0),
            outcome: ApplyOutcome::default(),
            queues: (0..sh.fabric.nodes()).map(|_| VecDeque::new()).collect(),
            out: WorkerOut {
                tag: MachineTag::DIRECTORY,
                coverage: DenseCoverage::new(sh.dir_fsm),
                miss_latency_ns: Vec::new(),
                hits: 0,
                misses: 0,
                messages: 0,
                peak_queue_depth: 0,
                fault: FaultStats::default(),
            },
            fault: FaultState::new(sh.fabric.nodes()),
        }
    }

    fn topo(&self) -> usize {
        self.sh.n_caches + self.shard
    }

    fn step_msg(&mut self, src: usize) -> StepOutcome {
        let Some(&env) = self.queues[src].front() else {
            return StepOutcome::Parked;
        };
        let sh = self.sh;
        let addr = env.addr;
        let entry = &self.entries[addr as usize];
        let event = Event::Msg(env.msg.mtype);
        self.out.coverage.record(entry.state, event);
        let arc = select_arc_indexed(
            sh.dir_fsm,
            &sh.dir_idx,
            entry.state,
            event,
            Some(&env.msg),
            None,
            Some(entry),
        );
        let Some(arc) = arc else {
            sh.fail(ServeError::UnexpectedMessage(format!(
                "dir shard {} in state {} cannot handle {} for block {addr}",
                self.shard,
                sh.dir_fsm.state(entry.state).name,
                env.msg
            )));
            return StepOutcome::Failed;
        };
        if arc.kind == ArcKind::Stall {
            return StepOutcome::Parked;
        }
        self.scratch.clone_from(entry);
        let ctx = MachineCtx::Dir { entry: &mut self.scratch, self_id: NodeId(sh.n_caches as u8) };
        if let Err(e) = apply_into(sh.dir_fsm, arc, Some(&env.msg), ctx, 0, &mut self.outcome) {
            sh.fail(ServeError::Exec(format!(
                "dir shard {} applying {}: {e}",
                self.shard, env.msg
            )));
            return StepOutcome::Failed;
        }
        if !sh.outgoing_fits(self.topo(), addr, &self.outcome.outgoing, self.fault.withheld) {
            if self.fault.withheld > 0 {
                self.fault.stats.squeeze_parks += 1;
            }
            return StepOutcome::Parked;
        }
        std::mem::swap(&mut self.entries[addr as usize], &mut self.scratch);
        sh.publish(self.topo(), addr, &self.outcome.outgoing);
        sh.in_flight.fetch_sub(1, Ordering::SeqCst);
        self.queues[src].pop_front();
        self.out.messages += 1;
        StepOutcome::Applied
    }

    fn run(mut self) -> WorkerOut {
        self.run_loop();
        self.out.fault = self.fault.stats;
        self.out
    }

    fn run_loop(&mut self) {
        let sh = self.sh;
        let nodes = sh.fabric.nodes();
        let topo = self.topo();
        let mut idle = 0u32;
        loop {
            if sh.done.load(Ordering::SeqCst) {
                break;
            }
            if let Some(plan) = sh.plan.as_ref() {
                self.fault.begin_pass(plan, topo);
            }
            let mut progress = false;
            drain(sh, topo, &mut self.queues);
            for src in 0..nodes {
                loop {
                    if self.queues[src].is_empty() {
                        break;
                    }
                    if let Some(plan) = sh.plan.as_ref() {
                        if self.fault.edge_held(plan, topo, src) {
                            break; // head delayed; the edge waits behind it
                        }
                    }
                    match self.step_msg(src) {
                        StepOutcome::Applied => {
                            self.fault.consumed(src);
                            progress = true;
                        }
                        StepOutcome::Parked => break,
                        StepOutcome::Failed => return,
                    }
                }
            }
            let depth: usize = self.queues.iter().map(VecDeque::len).sum();
            self.out.peak_queue_depth = self.out.peak_queue_depth.max(depth);
            if progress {
                idle = 0;
                continue;
            }
            idle += 1;
            if idle % 64 == 0 {
                if sh.quiescent() {
                    sh.done.store(true, Ordering::SeqCst);
                    break;
                }
                if Instant::now() >= sh.deadline {
                    sh.fail(deadline_error(sh));
                    break;
                }
            }
            idle_backoff(idle);
        }
    }
}

fn deadline_error(sh: &Shared) -> ServeError {
    ServeError::Deadline(format!(
        "run did not quiesce in time ({} message(s) still in flight, {}/{} cores done issuing)",
        sh.in_flight.load(Ordering::SeqCst),
        sh.cores_done.load(Ordering::SeqCst),
        sh.n_caches
    ))
}

fn shared_addrs(sh: &Shared) -> usize {
    sh.n_addrs
}

/// Runs a worker body under a panic guard: a panicking worker becomes
/// [`ServeError::WorkerPanic`] — failing the run and releasing every
/// other thread — instead of tearing down the whole scope.
fn supervise(sh: &Shared, worker: String, body: impl FnOnce() -> WorkerOut) -> Option<WorkerOut> {
    // AssertUnwindSafe: everything the body shares is atomics, the rings
    // (whose per-slot publication protocol a mid-push unwind cannot
    // corrupt for *other* slots — the run is failed anyway), and the
    // failure mutex, whose poisoning `fail` recovers from. Worker-local
    // state dies with the worker.
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)) {
        Ok(out) => Some(out),
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "opaque panic payload".to_string()
            };
            sh.fail(ServeError::WorkerPanic { worker, message });
            None
        }
    }
}

/// Runs the service to quiescence and reports what it measured.
///
/// `cache`/`dir` are the generated FSMs to execute (the very ones the
/// model checker verified); see [`ServeConfig`] for the knobs.
///
/// # Errors
///
/// [`ServeError::Config`] for rejected configurations, and the
/// violation-class errors ([`ServeError::UnexpectedMessage`],
/// [`ServeError::Exec`], [`ServeError::Deadline`]) when the live run
/// breaks — all of which the `protogen serve` CLI turns into a non-zero
/// exit.
pub fn serve(cache: &Fsm, dir: &Fsm, cfg: &ServeConfig) -> Result<ServeReport, ServeError> {
    cfg.validate()?;
    let per_core = cfg.total_ops.div_ceil(cfg.n_caches);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let schedules = cfg
        .workload
        .schedules(cfg.n_caches, cfg.n_addrs, per_core, &mut rng)
        .map_err(|e| ServeError::Config(e.to_string()))?;

    let nodes = cfg.n_caches + cfg.dir_shards;
    let sh = Shared {
        cache_fsm: cache,
        dir_fsm: dir,
        cache_idx: FsmIndex::new(cache),
        dir_idx: FsmIndex::new(dir),
        fabric: Fabric::new(nodes, cfg.mailbox_cap),
        n_caches: cfg.n_caches,
        dir_shards: cfg.dir_shards,
        n_addrs: cfg.n_addrs,
        in_flight: AtomicU64::new(0),
        cores_done: AtomicUsize::new(0),
        done: AtomicBool::new(false),
        failure: Mutex::new(None),
        deadline: Instant::now() + Duration::from_secs_f64(cfg.max_seconds),
        plan: cfg.faults.as_ref().map(|f| FaultPlan::expand(f, cfg.n_caches, cfg.mailbox_cap)),
    };

    let start = Instant::now();
    let outs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nodes);
        for (id, schedule) in schedules.into_iter().enumerate() {
            let sh = &sh;
            handles.push(scope.spawn(move || {
                supervise(sh, format!("cache {id}"), move || {
                    CacheWorker::new(sh, id, schedule).run()
                })
            }));
        }
        for shard in 0..cfg.dir_shards {
            let sh = &sh;
            handles.push(scope.spawn(move || {
                supervise(sh, format!("dir shard {shard}"), move || DirWorker::new(sh, shard).run())
            }));
        }
        // `supervise` converts worker panics into a recorded failure, so
        // the joins themselves cannot fail.
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("supervise contains all panics"))
            .collect()
    });
    let seconds = start.elapsed().as_secs_f64();

    let failure = sh.failure.lock().unwrap_or_else(|p| p.into_inner()).take();
    let deadline_hit = matches!(failure, Some(ServeError::Deadline(_)));
    if let Some(e) = failure {
        if !deadline_hit {
            return Err(e);
        }
        // A deadline is a *timeout with partial measurements*, not a
        // protocol failure: report what was measured, marked
        // `StopReason::Deadline` (the CLI still exits non-zero).
    }

    let mut fault_stats = sh
        .plan
        .as_ref()
        .map(|p| FaultStats { planned_crashes: p.planned_crashes() as u64, ..Default::default() });
    let mut coverage = PairSet::new();
    let mut miss_latency = Histogram::new();
    let mut report = ServeReport {
        n_caches: cfg.n_caches,
        dir_shards: cfg.dir_shards,
        n_addrs: cfg.n_addrs,
        ops: 0,
        hits: 0,
        misses: 0,
        messages: 0,
        seconds,
        miss_latency: Histogram::new(),
        peak_queue_depths: Vec::with_capacity(nodes),
        coverage: PairSet::new(),
        stop_reason: StopReason::Quiesced,
        faults: None,
    };
    for out in &outs {
        out.coverage.merge_into(out.tag, &mut coverage);
        for &ns in &out.miss_latency_ns {
            miss_latency.record(ns);
        }
        report.hits += out.hits;
        report.misses += out.misses;
        report.messages += out.messages;
        report.peak_queue_depths.push(out.peak_queue_depth);
        if let Some(fs) = &mut fault_stats {
            fs.absorb(&out.fault);
        }
    }
    report.ops = report.hits + report.misses;
    report.miss_latency = miss_latency;
    report.coverage = coverage;
    report.stop_reason = if deadline_hit {
        StopReason::Deadline
    } else if fault_stats.is_some_and(|fs| fs.crashes_completed < fs.planned_crashes) {
        // Quiesced, but the fault plan never finished (e.g. an explicit
        // crash point past the schedule end): the experiment is
        // inconclusive, which callers must be able to see.
        StopReason::Fault
    } else {
        StopReason::Quiesced
    };
    report.faults = fault_stats;
    Ok(report)
}
