//! Stress tests for the mailbox fabric and the service's shutdown
//! discipline: no loss or duplication under contention, clean drain at
//! quiescence, and backpressure that never deadlocks. These are the
//! tests the CI ThreadSanitizer job runs against the lock-free paths.

use protogen_core::{generate, GenConfig};
use protogen_runtime::{Msg, NodeId};
use protogen_serve::mailbox::{Envelope, Fabric};
use protogen_serve::{serve, ServeConfig};
use protogen_sim::Workload;
use protogen_spec::MsgId;
use std::sync::mpsc;
use std::time::Duration;

fn env(src: u8, seq: u32) -> Envelope {
    // Sequence number split across addr and req so both words carry
    // producer-identifying payload.
    Envelope {
        addr: seq,
        msg: Msg {
            mtype: MsgId((seq % 7) as u16),
            src: NodeId(src),
            dst: NodeId(9),
            req: NodeId(src),
            ack_count: (seq % 3 == 0).then_some((seq % 251) as u8),
            data: (seq % 2 == 0).then_some((seq % 256) as u8),
        },
    }
}

/// Runs `f` on a fresh thread and fails the test if it has not finished
/// within `secs` — a liveness watchdog, so a deadlock fails fast instead
/// of hanging the whole suite until the CI job timeout.
fn with_watchdog<F: FnOnce() + Send + 'static>(secs: u64, f: F) {
    let (tx, rx) = mpsc::channel();
    let t = std::thread::spawn(move || {
        f();
        tx.send(()).unwrap();
    });
    rx.recv_timeout(Duration::from_secs(secs)).expect("stress scenario deadlocked");
    t.join().unwrap();
}

/// Three producers blast one consumer through tiny (cap 8) rings. The
/// consumer must see every producer's sequence exactly, in order, with
/// nothing lost, duplicated, or corrupted.
#[test]
fn contended_fabric_loses_and_duplicates_nothing() {
    const PER_PRODUCER: u32 = 50_000;
    const PRODUCERS: usize = 3;
    with_watchdog(120, || {
        let fabric = Fabric::new(PRODUCERS + 1, 8);
        let consumer_node = PRODUCERS;
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let fabric = &fabric;
                s.spawn(move || {
                    for seq in 0..PER_PRODUCER {
                        let mut e = env(p as u8, seq);
                        loop {
                            match fabric.try_send(p, consumer_node, e) {
                                Ok(()) => break,
                                Err(back) => {
                                    e = back;
                                    // Yield, don't spin: on a box with
                                    // fewer cores than threads a pure spin
                                    // wait starves the consumer.
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            let fabric = &fabric;
            s.spawn(move || {
                let mut next = [0u32; PRODUCERS];
                let mut received = 0u64;
                while received < PER_PRODUCER as u64 * PRODUCERS as u64 {
                    let mut mask = fabric.take_ready(consumer_node);
                    if mask == 0 {
                        // Defensive rescan: ready bits may trail pushes.
                        mask = (1 << PRODUCERS) - 1;
                        std::thread::yield_now();
                    }
                    while mask != 0 {
                        let src = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        while let Some(got) = fabric.ring(src, consumer_node).pop() {
                            let want = env(src as u8, next[src]);
                            assert_eq!(got, want, "edge {src} out of order or corrupted");
                            next[src] += 1;
                            received += 1;
                        }
                    }
                }
                for (src, &n) in next.iter().enumerate() {
                    assert_eq!(n, PER_PRODUCER, "edge {src} lost messages");
                }
                // After everything was consumed the fabric must be empty.
                assert_eq!(fabric.inbound_len(consumer_node), 0);
            });
        });
    });
}

/// Two nodes flood each other over cap-16 rings while obeying the
/// service discipline: a producer facing a full output edge keeps
/// draining its own inbox and retries. Both must finish — backpressure
/// may slow progress but never wedge it.
#[test]
fn mutual_backpressure_never_deadlocks() {
    const PER_NODE: u32 = 20_000;
    with_watchdog(120, || {
        let fabric = Fabric::new(2, 16);
        std::thread::scope(|s| {
            for me in 0..2usize {
                let fabric = &fabric;
                s.spawn(move || {
                    let peer = 1 - me;
                    let mut sent = 0u32;
                    let mut got = 0u32;
                    while sent < PER_NODE || got < PER_NODE {
                        let mut progressed = false;
                        if sent < PER_NODE && fabric.try_send(me, peer, env(me as u8, sent)).is_ok()
                        {
                            sent += 1;
                            progressed = true;
                        }
                        // Drain own inbox whether or not the send stuck —
                        // the discipline that makes the full-edge wait finite.
                        while let Some(e) = fabric.ring(peer, me).pop() {
                            assert_eq!(e, env(peer as u8, got));
                            got += 1;
                            progressed = true;
                        }
                        if !progressed {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert_eq!(fabric.inbound_len(0), 0);
        assert_eq!(fabric.inbound_len(1), 0);
    });
}

/// A full service run must shut down clean: every scheduled operation
/// completed, nothing left queued at any node, and the run quiesced well
/// inside its deadline — the in-flight counter reaching zero is what
/// released the workers, so a non-drained mailbox cannot report success.
#[test]
fn service_shutdown_drains_everything() {
    let ssp = protogen_protocols::msi();
    let g = generate(&ssp, &GenConfig::non_stalling()).expect("msi generates");
    with_watchdog(120, move || {
        for workload in [Workload::Uniform { store_pct: 50 }, Workload::Migratory] {
            let mut cfg = ServeConfig::new(2);
            cfg.dir_shards = 2;
            cfg.n_addrs = 4;
            cfg.total_ops = 8_000;
            cfg.mailbox_cap = 16; // tiny rings: exercise backpressure paths
            cfg.workload = workload.clone();
            cfg.seed = 7;
            let report = serve(&g.cache, &g.directory, &cfg)
                .unwrap_or_else(|e| panic!("{} run failed: {e}", workload.label()));
            assert_eq!(report.ops, 8_000, "every scheduled op must complete");
            assert_eq!(report.ops, report.hits + report.misses);
            assert!(report.messages > 0, "a coherence workload exchanges messages");
            assert_eq!(report.peak_queue_depths.len(), 4);
        }
    });
}
