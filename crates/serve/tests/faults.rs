//! Fault-injection robustness: every fault schedule the plan can produce
//! must leave the conformance contract intact (live pairs ⊆ checked
//! envelope, no protocol errors), crash recovery must complete through
//! in-envelope `Replacement` traffic, worker panics must surface as
//! structured errors instead of torn-down scopes, and the planted
//! `unsafe_reset` recovery bug must be *caught* by the oracle — the
//! negative control proving the other tests can fail.

use protogen_core::{generate, GenConfig};
use protogen_mc::McConfig;
use protogen_serve::{
    checked_envelope, serve, FaultConfig, FaultPlan, ServeConfig, ServeError, StopReason,
};
use protogen_sim::Workload;
use std::sync::mpsc;
use std::time::Duration;

/// Liveness watchdog (same discipline as `stress.rs`): a wedged fault
/// schedule fails fast instead of hanging the suite.
fn with_watchdog<F: FnOnce() + Send + 'static>(secs: u64, f: F) {
    let (tx, rx) = mpsc::channel();
    let t = std::thread::spawn(move || {
        f();
        tx.send(()).unwrap();
    });
    rx.recv_timeout(Duration::from_secs(secs)).expect("fault scenario deadlocked");
    t.join().unwrap();
}

fn base_cfg(ops: usize) -> ServeConfig {
    let mut cfg = ServeConfig::new(2);
    cfg.dir_shards = 2;
    cfg.n_addrs = 4;
    cfg.total_ops = ops;
    cfg.mailbox_cap = 16;
    cfg.workload = Workload::Uniform { store_pct: 50 };
    cfg.seed = 7;
    cfg
}

/// The full fault matrix — delays, stalls, squeezes, and a mid-schedule
/// cache crash with proper recovery — across both protocols and both
/// generation modes: every run must quiesce cleanly, complete its crash
/// recovery, and stay strictly inside the verified envelope.
#[test]
fn fault_matrix_stays_inside_the_verified_envelope() {
    for (name, ssp) in [("msi", protogen_protocols::msi()), ("mesi", protogen_protocols::mesi())] {
        for (mode, gen_cfg) in
            [("stalling", GenConfig::stalling()), ("non-stalling", GenConfig::non_stalling())]
        {
            let g = generate(&ssp, &gen_cfg).expect("protocol generates");
            let envelope = checked_envelope(&g.cache, &g.directory, McConfig::with_caches(2))
                .expect("verification passes");
            let label = format!("{name}/{mode}");
            with_watchdog(120, move || {
                let mut cfg = base_cfg(20_000);
                cfg.faults = Some(FaultConfig::all(11));
                let report = serve(&g.cache, &g.directory, &cfg)
                    .unwrap_or_else(|e| panic!("{label}: faulted run failed: {e}"));
                assert_eq!(report.stop_reason, StopReason::Quiesced, "{label}");
                assert_eq!(report.ops, 20_000, "{label}: every op completes despite faults");
                let fs = report.faults.expect("fault stats are reported");
                assert_eq!(fs.planned_crashes, 1, "{label}");
                assert_eq!(fs.crashes_completed, 1, "{label}: recovery must finish");
                assert_eq!(fs.lines_lost, 0, "{label}: proper recovery loses nothing");
                assert!(fs.delays_injected > 0, "{label}: delays must actually fire");
                let escapes = report.escapes(&envelope);
                assert!(
                    escapes.is_empty(),
                    "{label}: faulted run escaped the envelope: {escapes:?}"
                );
            });
        }
    }
}

/// A panicking worker must not tear down the scope: `serve` reports a
/// structured [`ServeError::WorkerPanic`] naming the worker, and every
/// other thread exits cleanly.
#[test]
fn worker_panic_is_isolated_and_reported() {
    use protogen_spec::{
        Access, Arc, ArcKind, ArcNote, Event, Fsm, FsmState, FsmStateId, FsmStateKind, MachineKind,
        Perm, StableId,
    };
    let state = |name: &str| FsmState {
        name: name.into(),
        kind: FsmStateKind::Stable(StableId(0)),
        state_sets: vec![],
        perm: Perm::None,
        data_valid: false,
        merged_names: vec![],
    };
    // A deliberately corrupt FSM: the Load arc targets a state id that
    // does not exist, so applying it panics inside a cache worker.
    let cache = Fsm {
        protocol: "broken".into(),
        machine: MachineKind::Cache,
        messages: vec![],
        states: vec![state("I")],
        arcs: vec![Arc {
            from: FsmStateId(0),
            event: Event::Access(Access::Load),
            guards: vec![],
            actions: vec![],
            to: FsmStateId(99),
            kind: ArcKind::Normal,
            note: ArcNote::Ssp,
        }],
    };
    let dir = Fsm {
        protocol: "broken".into(),
        machine: MachineKind::Directory,
        messages: vec![],
        states: vec![state("D")],
        arcs: vec![],
    };
    with_watchdog(60, move || {
        let cfg = base_cfg(1_000);
        match serve(&cache, &dir, &cfg) {
            Err(ServeError::WorkerPanic { worker, message }) => {
                assert!(worker.starts_with("cache "), "panic attributed to a worker: {worker}");
                assert!(!message.is_empty(), "panic message captured");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    });
}

/// The wall-clock backstop is a *timeout with partial measurements*, not
/// a protocol failure: `serve` returns the report marked
/// [`StopReason::Deadline`].
#[test]
fn deadline_yields_partial_report_not_error() {
    let g = generate(&protogen_protocols::msi(), &GenConfig::non_stalling()).unwrap();
    with_watchdog(60, move || {
        let mut cfg = base_cfg(50_000_000);
        cfg.max_seconds = 0.05;
        let report = serve(&g.cache, &g.directory, &cfg).expect("deadline is not an error");
        assert_eq!(report.stop_reason, StopReason::Deadline);
        assert!(report.ops < 50_000_000, "the run cannot have finished");
    });
}

/// An explicit crash point past the schedule end never fires: the run
/// quiesces, but the unfinished fault plan is reported as
/// [`StopReason::Fault`] so the experiment cannot pass silently.
#[test]
fn abandoned_crash_reports_fault_stop_reason() {
    let g = generate(&protogen_protocols::msi(), &GenConfig::non_stalling()).unwrap();
    with_watchdog(60, move || {
        let mut cfg = base_cfg(4_000);
        cfg.faults =
            Some(FaultConfig { crashes: 1, crash_at_op: Some(usize::MAX), ..FaultConfig::none(3) });
        let report = serve(&g.cache, &g.directory, &cfg).expect("run still completes");
        assert_eq!(report.stop_reason, StopReason::Fault);
        let fs = report.faults.unwrap();
        assert_eq!(fs.planned_crashes, 1);
        assert_eq!(fs.crashes_completed, 0, "the crash never triggered");
        assert_eq!(report.ops, 4_000, "the workload itself still completed");
    });
}

/// Same seed ⇒ same fault plan and the same logical outcome. Wall-clock
/// fields (seconds, latencies) and counters coupled to thread
/// interleaving (delay/stall tallies, recovery traffic volume) are
/// legitimately run-dependent, so determinism is pinned on the plan
/// itself plus the interleaving-independent outcome facts.
#[test]
fn fault_runs_are_seed_deterministic() {
    let cfg = FaultConfig::all(99);
    assert_eq!(FaultPlan::expand(&cfg, 4, 64), FaultPlan::expand(&cfg, 4, 64));

    let g = generate(&protogen_protocols::msi(), &GenConfig::non_stalling()).unwrap();
    let envelope =
        checked_envelope(&g.cache, &g.directory, McConfig::with_caches(2)).expect("msi verifies");
    with_watchdog(120, move || {
        let run = || {
            let mut scfg = base_cfg(10_000);
            scfg.faults = Some(FaultConfig::all(99));
            serve(&g.cache, &g.directory, &scfg).expect("faulted run completes")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.stop_reason, b.stop_reason);
        let (fa, fb) = (a.faults.unwrap(), b.faults.unwrap());
        assert_eq!(fa.planned_crashes, fb.planned_crashes);
        assert_eq!(fa.crashes_completed, fb.crashes_completed);
        assert_eq!(fa.lines_lost, 0);
        assert_eq!(fb.lines_lost, 0);
        assert!(a.escapes(&envelope).is_empty());
        assert!(b.escapes(&envelope).is_empty());
    });
}

/// Negative control: the planted `unsafe_reset` recovery bug (drop owned
/// lines without telling the directory) must be *caught* — as a protocol
/// error or an envelope escape — proving the conformance oracle would
/// notice a real recovery bug. Seeds where the crashed cache happened to
/// hold nothing are vacuous and skipped; at least one seed must both
/// lose lines and get caught.
#[test]
fn unsafe_reset_recovery_bug_is_caught() {
    let g = generate(&protogen_protocols::msi(), &GenConfig::non_stalling()).unwrap();
    let envelope =
        checked_envelope(&g.cache, &g.directory, McConfig::with_caches(2)).expect("msi verifies");
    with_watchdog(120, move || {
        let mut caught_nonvacuous = false;
        for seed in 0..4 {
            let mut cfg = base_cfg(8_000);
            cfg.workload = Workload::Uniform { store_pct: 90 }; // store-heavy: lines to lose
            cfg.faults =
                Some(FaultConfig { crashes: 1, unsafe_reset: true, ..FaultConfig::none(seed) });
            match serve(&g.cache, &g.directory, &cfg) {
                Err(_) => {
                    // Dropped state made a later message unhandleable —
                    // caught, but we cannot inspect lines_lost; try more
                    // seeds for a report-carrying catch too.
                    caught_nonvacuous = true;
                }
                Ok(report) => {
                    let fs = report.faults.unwrap();
                    if fs.lines_lost == 0 {
                        continue; // vacuous: the cache held nothing at the crash
                    }
                    let caught = !report.escapes(&envelope).is_empty()
                        || report.stop_reason != StopReason::Quiesced;
                    assert!(
                        caught,
                        "seed {seed}: lost {} line(s) yet the oracle saw nothing",
                        fs.lines_lost
                    );
                    caught_nonvacuous = true;
                }
            }
            if caught_nonvacuous {
                break;
            }
        }
        assert!(caught_nonvacuous, "no seed produced a non-vacuous caught run");
    });
}
