fn main() {
    let ssp = protogen_protocols::msi();
    for (name, cfg) in [
        ("stalling", protogen_core::GenConfig::stalling()),
        ("non-stalling", protogen_core::GenConfig::non_stalling()),
    ] {
        match protogen_core::generate(&ssp, &cfg) {
            Ok(g) => {
                println!("=== {} ===", name);
                println!("{}", g.report);
                print!("cache states: ");
                for s in &g.cache.states {
                    print!("{} ", s.full_name());
                }
                println!();
                print!("dir states: ");
                for s in &g.directory.states {
                    print!("{} ", s.full_name());
                }
                println!();
            }
            Err(e) => println!("{}: ERROR {e}", name),
        }
    }
}
