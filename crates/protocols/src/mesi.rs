//! The MESI stable state protocol: MSI plus an Exclusive-clean state.
//!
//! A GetS that finds the block uncached is granted E (exclusive, clean);
//! the cache may then silently upgrade E→M on a store without any message.
//! Because of silent upgrades the directory cannot distinguish E from M, so
//! it tracks both with a single `EM` state — which also means the forwarded
//! requests to the owner (`Fwd_GetS`, `Fwd_GetM`) cannot be renamed apart
//! during preprocessing and keep an association *set* {E, M} that the
//! generator resolves per context.

use protogen_spec::{Access, Action, Guard, MsgClass, Perm, Ssp, SspBuilder, VirtualNet};

/// Builds the atomic MESI stable state protocol.
///
/// Cache states: I, S, E (exclusive clean, silent E→M upgrade), M.
/// Directory states: I, S, EM (owner holds E or M).
///
/// # Example
///
/// ```
/// let ssp = protogen_protocols::mesi();
/// assert_eq!(ssp.cache.states.len(), 4);
/// assert_eq!(ssp.directory.states.len(), 3);
/// ```
pub fn mesi() -> Ssp {
    let mut b = SspBuilder::new("MESI");

    let get_s = b.message("GetS", MsgClass::Request);
    let get_m = b.message("GetM", MsgClass::Request);
    let put_s = b.message("PutS", MsgClass::Request);
    let put_m = b.data_message("PutM", MsgClass::Request);
    let put_e = b.message("PutE", MsgClass::Request);
    let fwd_get_s = b.message("Fwd_GetS", MsgClass::Forward);
    let fwd_get_m = b.message("Fwd_GetM", MsgClass::Forward);
    let inv = b.message("Inv", MsgClass::Forward);
    let data = b.data_ack_message("Data", MsgClass::Response);
    let data_e = b.data_message("DataE", MsgClass::Response);
    let inv_ack = b.message("Inv_Ack", MsgClass::Response);
    let put_ack = b.message("Put_Ack", MsgClass::Response);
    b.assign_vnet(put_ack, VirtualNet::Forward);

    let i = b.cache_state("I", Perm::None);
    let s = b.cache_state("S", Perm::Read);
    // E grants silent write permission: model it as Read here (a load-only
    // state) with the silent upgrade explicit as a hit-and-move to M, so
    // the checker sees the write permission appear exactly when M begins.
    let e = b.cache_state_full("E", Perm::Read, true);
    let m = b.cache_state("M", Perm::ReadWrite);

    let di = b.dir_state("I");
    let ds = b.dir_state("S");
    let dem = b.dir_state("EM");

    // ----- cache -----
    // I: a load can be answered Shared (Data) or Exclusive (DataE).
    let req = b.send_req(get_s);
    let chain = b.await_data2(data, s, data_e, e);
    b.cache_issue(i, Access::Load, req, chain);
    let req = b.send_req(get_m);
    let chain = b.await_data_acks(data, inv_ack, m);
    b.cache_issue(i, Access::Store, req, chain);
    // S
    b.cache_hit(s, Access::Load);
    let req = b.send_req(get_m);
    let chain = b.await_data_acks(data, inv_ack, m);
    b.cache_issue(s, Access::Store, req, chain);
    let req = b.send_req(put_s);
    let chain = b.await_ack(put_ack, i);
    b.cache_issue(s, Access::Replacement, req, chain);
    let ack = b.send_to_req(inv_ack);
    b.cache_react(s, inv, vec![ack], Some(i));
    // E: silent upgrade on store; owner duties for forwards.
    b.cache_hit(e, Access::Load);
    b.cache_hit_move(e, Access::Store, m);
    let req = b.send_req(put_e);
    let chain = b.await_ack(put_ack, i);
    b.cache_issue(e, Access::Replacement, req, chain);
    let to_req = b.send_data_to_req(data);
    let to_dir = b.send_data_to_dir(data);
    b.cache_react(e, fwd_get_s, vec![to_req, to_dir], Some(s));
    let to_req = b.send_data_to_req(data);
    b.cache_react(e, fwd_get_m, vec![to_req], Some(i));
    // M
    b.cache_hit(m, Access::Load);
    b.cache_hit(m, Access::Store);
    let req = b.send_req_data(put_m);
    let chain = b.await_ack(put_ack, i);
    b.cache_issue(m, Access::Replacement, req, chain);
    let to_req = b.send_data_to_req(data);
    let to_dir = b.send_data_to_dir(data);
    b.cache_react(m, fwd_get_s, vec![to_req, to_dir], Some(s));
    let to_req = b.send_data_to_req(data);
    b.cache_react(m, fwd_get_m, vec![to_req], Some(i));

    // ----- directory -----
    // I: exclusive grant on GetS.
    let d = b.send_data_to_req(data_e);
    b.dir_react(di, get_s, vec![d, Action::SetOwnerToReq], Some(dem));
    let d = b.send_data_acks_to_req(data);
    b.dir_react(di, get_m, vec![d, Action::SetOwnerToReq], Some(dem));
    // S
    let d = b.send_data_to_req(data);
    b.dir_react(ds, get_s, vec![d, Action::AddReqToSharers], None);
    let d = b.send_data_acks_to_req(data);
    let invs = b.inv_sharers(inv);
    b.dir_react(ds, get_m, vec![d, invs, Action::SetOwnerToReq, Action::ClearSharers], Some(dem));
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        ds,
        put_s,
        Guard::ReqIsLastSharer,
        vec![pa, Action::RemoveReqFromSharers],
        Some(di),
    );
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        ds,
        put_s,
        Guard::ReqIsNotLastSharer,
        vec![pa, Action::RemoveReqFromSharers],
        None,
    );
    // EM: the owner holds E or M; it supplies data either way.
    let f = b.fwd_to_owner(fwd_get_s);
    let chain = b.await_owner_data(data, ds);
    b.dir_issue(
        dem,
        get_s,
        vec![f, Action::AddReqToSharers, Action::AddOwnerToSharers, Action::ClearOwner],
        chain,
    );
    let f = b.fwd_to_owner(fwd_get_m);
    b.dir_react(dem, get_m, vec![f, Action::SetOwnerToReq], None);
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        dem,
        put_m,
        Guard::ReqIsOwner,
        vec![Action::CopyDataFromMsg, pa, Action::ClearOwner],
        Some(di),
    );
    // PutE: the block is clean, so no data travels; the directory's copy
    // is already current.
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(dem, put_e, Guard::ReqIsOwner, vec![pa, Action::ClearOwner], Some(di));

    b.build().expect("MESI SSP is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::Trigger;

    #[test]
    fn mesi_is_valid() {
        let ssp = mesi();
        assert_eq!(ssp.name, "MESI");
    }

    #[test]
    fn forwards_arrive_at_e_and_m() {
        let ssp = mesi();
        let f = ssp.msg_by_name("Fwd_GetS").unwrap();
        let arrivals: Vec<_> = ssp
            .cache
            .state_ids()
            .filter(|&s| ssp.cache.handles(s, Trigger::Msg(f)))
            .map(|s| ssp.cache.state(s).name.clone())
            .collect();
        assert_eq!(arrivals, vec!["E".to_string(), "M".to_string()]);
    }

    #[test]
    fn silent_upgrade_is_a_local_store() {
        let ssp = mesi();
        let e = ssp.cache.state_by_name("E").unwrap();
        let m = ssp.cache.state_by_name("M").unwrap();
        let entries = ssp.cache.entries_for(e, Trigger::Access(Access::Store));
        assert_eq!(entries.len(), 1);
        match &entries[0].effect {
            protogen_spec::Effect::Local { next, .. } => assert_eq!(*next, Some(m)),
            other => panic!("expected silent upgrade, got {other:?}"),
        }
    }
}
