//! The stable state protocols evaluated by the ProtoGen paper.
//!
//! Every protocol here is an *atomic* specification — just the stable
//! states, as an architect would write them on a whiteboard. Feeding one to
//! `protogen_core::generate` produces the full concurrent protocol.
//!
//! | Function | Protocol | Paper section |
//! |---|---|---|
//! | [`msi`] | Three-state MSI (Tables I/II) | §VI-A/B |
//! | [`mesi`] | MESI with exclusive-clean state and silent upgrade | §VI-A/B |
//! | [`mosi`] | MOSI with owned state (preprocessing demo, Tables III/IV) | §VI-A/B |
//! | [`msi_upgrade`] | MSI + Upgrade requests (reinterpretation, §V-D1) | §V-D1 |
//! | [`msi_unordered`] | MSI with handshakes for unordered networks | §VI-C |
//! | [`tso_cc`] | Simplified TSO-CC (no sharer tracking) | §VI-D |
//! | [`si_sd`] | Self-invalidate/self-downgrade (VIPS-M family) | related work |
//!
//! # Example
//!
//! ```
//! let ssp = protogen_protocols::msi();
//! assert_eq!(ssp.cache.states.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compose;
mod mesi;
mod mosi;
mod msi;
mod msi_unordered;
mod msi_upgrade;
mod sanity;
mod si_sd;
mod tso_cc;

pub use compose::{flat_composition, msi_under_mesi, msi_under_msi};
pub use mesi::mesi;
pub use mosi::mosi;
pub use msi::msi;
pub use msi_unordered::msi_unordered;
pub use msi_upgrade::msi_upgrade;
pub use sanity::{sim_sanity, SimSanity};
pub use si_sd::si_sd;
pub use tso_cc::tso_cc;

use protogen_spec::{MemoryModel, Ssp};

/// All built-in protocols, for sweeps and benchmarks.
pub fn all() -> Vec<Ssp> {
    vec![msi(), mesi(), mosi(), msi_upgrade(), msi_unordered(), tso_cc(), si_sd()]
}

/// The CLI names of the built-in protocols, in [`all`]'s order.
pub const NAMES: [&str; 7] =
    ["msi", "mesi", "mosi", "msi-upgrade", "msi-unordered", "tso-cc", "si-sd"];

/// Whether a protocol intentionally trades physical SWMR and data-value
/// freshness (§VI-D): TSO-CC and the SI/SD family self-invalidate lazily,
/// so those invariants must be relaxed when checking them. Derived from
/// the declared memory model — any non-SC spec trades some of the SC
/// contract; the checker's `PropertySet::promised` says which part.
pub fn trades_swmr(ssp: &Ssp) -> bool {
    ssp.consistency != MemoryModel::Sc
}

/// Looks a protocol up by its CLI name (see [`NAMES`]).
pub fn by_name(name: &str) -> Option<Ssp> {
    Some(match name {
        "msi" => msi(),
        "mesi" => mesi(),
        "mosi" => mosi(),
        "msi-upgrade" => msi_upgrade(),
        "msi-unordered" => msi_unordered(),
        "tso-cc" => tso_cc(),
        "si-sd" => si_sd(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_protocols_validate() {
        for ssp in super::all() {
            ssp.validate().unwrap_or_else(|e| panic!("{}: {e}", ssp.name));
        }
    }
}
