//! Per-protocol workload sanity envelopes for the simulator.
//!
//! Each built-in protocol declares what its generated controllers must
//! exhibit under the standard synthetic workloads — protocol-architecture
//! facts (does an exclusive-clean state exist? is the consistency model
//! strict?), not tuning numbers. `crates/sim/tests/sanity.rs` runs every
//! protocol against these envelopes.

/// What simulating a protocol must (and must not) show per workload.
#[derive(Debug, Clone, Copy)]
pub struct SimSanity {
    /// Under the `private` workload (disjoint per-core working sets) no
    /// controller may ever stall: there are no racing transactions.
    pub private_stall_free: bool,
    /// Coherence transactions (misses) per core under the `private`
    /// workload's load-then-store pattern: protocols with an
    /// exclusive-clean state (MESI's E) upgrade the first store silently
    /// and take 1; pure invalidation protocols pay a second transaction
    /// for the upgrade and take 2. `None` for relaxed protocols whose
    /// miss pattern is not pinned down by the architecture (TSO-CC's
    /// self-invalidation).
    pub private_misses_per_core: Option<usize>,
    /// Every miss costs at least this many messages (request + response
    /// is the absolute floor for a directory protocol).
    pub min_msgs_per_miss: f64,
}

/// The sanity envelope for a protocol, keyed by CLI name (see
/// [`crate::NAMES`]).
pub fn sim_sanity(name: &str) -> Option<SimSanity> {
    Some(match name {
        "msi" | "mosi" | "msi-upgrade" | "msi-unordered" => SimSanity {
            private_stall_free: true,
            private_misses_per_core: Some(2),
            min_msgs_per_miss: 2.0,
        },
        "mesi" => SimSanity {
            private_stall_free: true,
            // E absorbs the store upgrade: only the initial read misses.
            private_misses_per_core: Some(1),
            min_msgs_per_miss: 2.0,
        },
        "tso-cc" => SimSanity {
            private_stall_free: true,
            private_misses_per_core: None,
            min_msgs_per_miss: 2.0,
        },
        // SI/SD: private blocks still self-invalidate/self-downgrade
        // spontaneously, so neither stall freedom nor a miss count is
        // guaranteed; every miss is at least a request + grant.
        "si-sd" => SimSanity {
            private_stall_free: true,
            private_misses_per_core: None,
            min_msgs_per_miss: 2.0,
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_protocol_has_an_envelope() {
        for name in crate::NAMES {
            assert!(sim_sanity(name).is_some(), "{name} lacks a sanity envelope");
        }
        assert!(sim_sanity("nonesuch").is_none());
    }
}
