//! MSI with Upgrade requests — the reinterpretation example of §V-D1.
//!
//! A store to a block in S does not need data, only permission: the cache
//! issues an **Upgrade** and the directory answers with an acknowledgment
//! count (no data). The interesting race: if another store is ordered
//! first, the upgrader is invalidated and must logically restart from I —
//! where the same access issues a *different* request (GetM). The issued
//! Upgrade cannot be rescinded, so the generated directory reinterprets an
//! Upgrade that arrives for a non-sharer as the GetM the restart requires.

use protogen_spec::{
    Access, AckSrc, Action, Dst, Guard, MsgClass, Perm, ReqField, SendSpec, Ssp, SspBuilder,
    VirtualNet,
};

/// Builds the atomic MSI+Upgrade stable state protocol.
///
/// Identical to [`crate::msi`] except stores from S issue `Upgrade` and the
/// directory's S state answers upgrades from sharers with `AckCount`.
///
/// # Example
///
/// ```
/// let ssp = protogen_protocols::msi_upgrade();
/// assert!(ssp.msg_by_name("Upgrade").is_some());
/// ```
pub fn msi_upgrade() -> Ssp {
    let mut b = SspBuilder::new("MSI-Upgrade");

    let get_s = b.message("GetS", MsgClass::Request);
    let get_m = b.message("GetM", MsgClass::Request);
    let upgrade = b.message("Upgrade", MsgClass::Request);
    let put_s = b.message("PutS", MsgClass::Request);
    let put_m = b.data_message("PutM", MsgClass::Request);
    let fwd_get_s = b.message("Fwd_GetS", MsgClass::Forward);
    let fwd_get_m = b.message("Fwd_GetM", MsgClass::Forward);
    let inv = b.message("Inv", MsgClass::Forward);
    let data = b.data_ack_message("Data", MsgClass::Response);
    let ack_count = b.ack_count_message("AckCount", MsgClass::Response);
    let inv_ack = b.message("Inv_Ack", MsgClass::Response);
    let put_ack = b.message("Put_Ack", MsgClass::Response);
    b.assign_vnet(put_ack, VirtualNet::Forward);

    let i = b.cache_state("I", Perm::None);
    let s = b.cache_state("S", Perm::Read);
    let m = b.cache_state("M", Perm::ReadWrite);

    let di = b.dir_state("I");
    let ds = b.dir_state("S");
    let dm = b.dir_state("M");

    // ----- cache -----
    let req = b.send_req(get_s);
    let chain = b.await_data(data, s);
    b.cache_issue(i, Access::Load, req, chain);
    let req = b.send_req(get_m);
    let chain = b.await_data_acks(data, inv_ack, m);
    b.cache_issue(i, Access::Store, req, chain);
    b.cache_hit(s, Access::Load);
    // The §V-D1 difference: stores from S upgrade in place. The await
    // structure accepts *either* an AckCount (the Upgrade won) or a Data
    // (+count) response (the Upgrade lost, was reinterpreted as GetM, and
    // fresh data arrives).
    let req = b.send_req(upgrade);
    let mut chain = b.await_count_acks(ack_count, inv_ack, m);
    let data_chain = b.await_data_acks(data, inv_ack, m);
    chain.nodes[0].arcs.extend(data_chain.nodes[0].arcs.iter().filter(|a| a.msg == data).cloned());
    b.cache_issue(s, Access::Store, req, chain);
    let req = b.send_req(put_s);
    let chain = b.await_ack(put_ack, i);
    b.cache_issue(s, Access::Replacement, req, chain);
    let ack = b.send_to_req(inv_ack);
    b.cache_react(s, inv, vec![ack], Some(i));
    b.cache_hit(m, Access::Load);
    b.cache_hit(m, Access::Store);
    let req = b.send_req_data(put_m);
    let chain = b.await_ack(put_ack, i);
    b.cache_issue(m, Access::Replacement, req, chain);
    let to_req = b.send_data_to_req(data);
    let to_dir = b.send_data_to_dir(data);
    b.cache_react(m, fwd_get_s, vec![to_req, to_dir], Some(s));
    let to_req = b.send_data_to_req(data);
    b.cache_react(m, fwd_get_m, vec![to_req], Some(i));

    // ----- directory -----
    let d = b.send_data_to_req(data);
    b.dir_react(di, get_s, vec![d, Action::AddReqToSharers], Some(ds));
    let d = b.send_data_acks_to_req(data);
    b.dir_react(di, get_m, vec![d, Action::SetOwnerToReq], Some(dm));
    let d = b.send_data_to_req(data);
    b.dir_react(ds, get_s, vec![d, Action::AddReqToSharers], None);
    let d = b.send_data_acks_to_req(data);
    let invs = b.inv_sharers(inv);
    b.dir_react(ds, get_m, vec![d, invs, Action::SetOwnerToReq, Action::ClearSharers], Some(dm));
    // Upgrade from a sharer: permission only. An Upgrade from a cache that
    // is *not* a sharer lost a race and was invalidated; the generator's
    // reinterpretation rule (§V-D1) treats it as the GetM the same store
    // would issue from I.
    let cnt = Action::Send(
        SendSpec::new(ack_count, Dst::Req)
            .acks(AckSrc::SharersExceptReqCount)
            .req_field(ReqField::FromMsg),
    );
    let invs = b.inv_sharers(inv);
    b.dir_react_guarded(
        ds,
        upgrade,
        Guard::ReqInSharers,
        vec![cnt, invs, Action::SetOwnerToReq, Action::ClearSharers],
        Some(dm),
    );
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        ds,
        put_s,
        Guard::ReqIsLastSharer,
        vec![pa, Action::RemoveReqFromSharers],
        Some(di),
    );
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        ds,
        put_s,
        Guard::ReqIsNotLastSharer,
        vec![pa, Action::RemoveReqFromSharers],
        None,
    );
    let f = b.fwd_to_owner(fwd_get_s);
    let chain = b.await_owner_data(data, ds);
    b.dir_issue(
        dm,
        get_s,
        vec![f, Action::AddReqToSharers, Action::AddOwnerToSharers, Action::ClearOwner],
        chain,
    );
    let f = b.fwd_to_owner(fwd_get_m);
    b.dir_react(dm, get_m, vec![f, Action::SetOwnerToReq], None);
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        dm,
        put_m,
        Guard::ReqIsOwner,
        vec![Action::CopyDataFromMsg, pa, Action::ClearOwner],
        Some(di),
    );

    b.build().expect("MSI-Upgrade SSP is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::Trigger;

    #[test]
    fn upgrade_is_valid() {
        msi_upgrade().validate().unwrap();
    }

    #[test]
    fn store_from_s_issues_upgrade_not_getm() {
        let ssp = msi_upgrade();
        let s = ssp.cache.state_by_name("S").unwrap();
        let entries = ssp.cache.entries_for(s, Trigger::Access(Access::Store));
        let protogen_spec::Effect::Issue { request, .. } = &entries[0].effect else {
            panic!("S store should issue");
        };
        let upgrade = ssp.msg_by_name("Upgrade").unwrap();
        assert!(request.iter().any(|a| matches!(a, Action::Send(sp) if sp.msg == upgrade)));
    }

    #[test]
    fn upgrade_wait_accepts_count_or_data() {
        // The upgrader may receive AckCount (it won) or Data (it lost and
        // the directory reinterpreted the Upgrade as a GetM).
        let ssp = msi_upgrade();
        let s = ssp.cache.state_by_name("S").unwrap();
        let entries = ssp.cache.entries_for(s, Trigger::Access(Access::Store));
        let protogen_spec::Effect::Issue { chain, .. } = &entries[0].effect else {
            panic!("S store should issue");
        };
        let msgs: Vec<_> = chain.nodes[0].arcs.iter().map(|a| a.msg).collect();
        assert!(msgs.contains(&ssp.msg_by_name("AckCount").unwrap()));
        assert!(msgs.contains(&ssp.msg_by_name("Data").unwrap()));
    }
}
