//! The MSI stable state protocol (Tables I and II of the paper).
//!
//! This is the canonical three-state directory protocol from Sorin, Hill &
//! Wood's primer, specified atomically: three cache states (I, S, M), three
//! directory states (I, S, M), Get/Put requests, directory-forwarded
//! requests, and data/acknowledgment responses.

use protogen_spec::{Access, Action, Guard, Perm, Ssp, SspBuilder};

/// Builds the atomic MSI stable state protocol.
///
/// Cache specification (Table I):
///
/// | | load | store | replacement | Fwd-GetS | Fwd-GetM | Inv |
/// |---|---|---|---|---|---|---|
/// | I | GetS→S | GetM→M | | | | |
/// | S | hit | GetM→M | PutS→I | | | Inv-Ack→I |
/// | M | hit | hit | PutM→I | Data to req+dir→S | Data to req→I | |
///
/// Directory specification (Table II):
///
/// | | GetS | GetM | PutS | PutM |
/// |---|---|---|---|---|
/// | I | Data→S | Data+acks→M | | |
/// | S | Data | Data+acks, Invs→M | Put-Ack, −sharer | |
/// | M | fwd, await writeback→S | fwd | | Put-Ack→I |
///
/// # Example
///
/// ```
/// let ssp = protogen_protocols::msi();
/// assert_eq!(ssp.cache.states.len(), 3);
/// assert_eq!(ssp.directory.states.len(), 3);
/// ```
pub fn msi() -> Ssp {
    let mut b = SspBuilder::new("MSI");

    // Messages.
    let get_s = b.message("GetS", protogen_spec::MsgClass::Request);
    let get_m = b.message("GetM", protogen_spec::MsgClass::Request);
    let put_s = b.message("PutS", protogen_spec::MsgClass::Request);
    let put_m = b.data_message("PutM", protogen_spec::MsgClass::Request);
    let fwd_get_s = b.message("Fwd_GetS", protogen_spec::MsgClass::Forward);
    let fwd_get_m = b.message("Fwd_GetM", protogen_spec::MsgClass::Forward);
    let inv = b.message("Inv", protogen_spec::MsgClass::Forward);
    let data = b.data_ack_message("Data", protogen_spec::MsgClass::Response);
    let inv_ack = b.message("Inv_Ack", protogen_spec::MsgClass::Response);
    let put_ack = b.message("Put_Ack", protogen_spec::MsgClass::Response);
    // Put-Ack rides the forward network: it is a directory→cache message
    // that must stay ordered behind forwards to the same cache (a Put-Ack
    // overtaking a Fwd-GetM would let the old owner drop the only data
    // copy before serving it).
    b.assign_vnet(put_ack, protogen_spec::VirtualNet::Forward);

    // Cache states.
    let i = b.cache_state("I", Perm::None);
    let s = b.cache_state("S", Perm::Read);
    let m = b.cache_state("M", Perm::ReadWrite);

    // Directory states (named after the owner/sharer situation they track,
    // which is what pairs them with cache states during preprocessing).
    let di = b.dir_state("I");
    let ds = b.dir_state("S");
    let dm = b.dir_state("M");

    // ----- cache: Table I -----
    // I
    let req = b.send_req(get_s);
    let chain = b.await_data(data, s);
    b.cache_issue(i, Access::Load, req, chain);
    let req = b.send_req(get_m);
    let chain = b.await_data_acks(data, inv_ack, m);
    b.cache_issue(i, Access::Store, req, chain);
    // S
    b.cache_hit(s, Access::Load);
    let req = b.send_req(get_m);
    let chain = b.await_data_acks(data, inv_ack, m);
    b.cache_issue(s, Access::Store, req, chain);
    let req = b.send_req(put_s);
    let chain = b.await_ack(put_ack, i);
    b.cache_issue(s, Access::Replacement, req, chain);
    let ack = b.send_to_req(inv_ack);
    b.cache_react(s, inv, vec![ack], Some(i));
    // M
    b.cache_hit(m, Access::Load);
    b.cache_hit(m, Access::Store);
    let req = b.send_req_data(put_m);
    let chain = b.await_ack(put_ack, i);
    b.cache_issue(m, Access::Replacement, req, chain);
    let to_req = b.send_data_to_req(data);
    let to_dir = b.send_data_to_dir(data);
    b.cache_react(m, fwd_get_s, vec![to_req, to_dir], Some(s));
    let to_req = b.send_data_to_req(data);
    b.cache_react(m, fwd_get_m, vec![to_req], Some(i));

    // ----- directory: Table II -----
    // I
    let d = b.send_data_to_req(data);
    b.dir_react(di, get_s, vec![d, Action::AddReqToSharers], Some(ds));
    let d = b.send_data_acks_to_req(data);
    b.dir_react(di, get_m, vec![d, Action::SetOwnerToReq], Some(dm));
    // S
    let d = b.send_data_to_req(data);
    b.dir_react(ds, get_s, vec![d, Action::AddReqToSharers], None);
    let d = b.send_data_acks_to_req(data);
    let invs = b.inv_sharers(inv);
    b.dir_react(ds, get_m, vec![d, invs, Action::SetOwnerToReq, Action::ClearSharers], Some(dm));
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        ds,
        put_s,
        Guard::ReqIsLastSharer,
        vec![pa, Action::RemoveReqFromSharers],
        Some(di),
    );
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        ds,
        put_s,
        Guard::ReqIsNotLastSharer,
        vec![pa, Action::RemoveReqFromSharers],
        None,
    );
    // M
    let f = b.fwd_to_owner(fwd_get_s);
    let chain = b.await_owner_data(data, ds);
    b.dir_issue(
        dm,
        get_s,
        vec![f, Action::AddReqToSharers, Action::AddOwnerToSharers, Action::ClearOwner],
        chain,
    );
    let f = b.fwd_to_owner(fwd_get_m);
    b.dir_react(dm, get_m, vec![f, Action::SetOwnerToReq], None);
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        dm,
        put_m,
        Guard::ReqIsOwner,
        vec![Action::CopyDataFromMsg, pa, Action::ClearOwner],
        Some(di),
    );

    b.build().expect("MSI SSP is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::{MsgClass, Trigger};

    #[test]
    fn msi_is_valid() {
        let ssp = msi();
        assert_eq!(ssp.name, "MSI");
        assert!(ssp.network_ordered);
    }

    #[test]
    fn forwards_arrive_at_unique_states() {
        // Table I: Fwd-GetS and Fwd-GetM at M only; Inv at S only. The SSP
        // already satisfies the §V-A invariant without preprocessing.
        let ssp = msi();
        for (name, state) in [("Fwd_GetS", "M"), ("Fwd_GetM", "M"), ("Inv", "S")] {
            let m = ssp.msg_by_name(name).unwrap();
            let arrivals: Vec<_> =
                ssp.cache.state_ids().filter(|&s| ssp.cache.handles(s, Trigger::Msg(m))).collect();
            assert_eq!(arrivals.len(), 1, "{name}");
            assert_eq!(arrivals[0], ssp.cache.state_by_name(state).unwrap(), "{name}");
        }
    }

    #[test]
    fn message_classes_match_roles() {
        let ssp = msi();
        assert_eq!(ssp.msg(ssp.msg_by_name("GetS").unwrap()).class, MsgClass::Request);
        assert_eq!(ssp.msg(ssp.msg_by_name("Inv").unwrap()).class, MsgClass::Forward);
        assert_eq!(ssp.msg(ssp.msg_by_name("Data").unwrap()).class, MsgClass::Response);
        assert!(ssp.msg(ssp.msg_by_name("Data").unwrap()).carries_data);
        assert!(ssp.msg(ssp.msg_by_name("PutM").unwrap()).carries_data);
        assert!(!ssp.msg(ssp.msg_by_name("PutS").unwrap()).carries_data);
    }
}
