//! Built-in hierarchical compositions (DESIGN.md §12).

use protogen_spec::{Composition, LevelSpec};

/// Two-level MSI: `fanout_l1` L1 caches per L2 running MSI, `fanout_l2`
/// L2s under the root directory, also running MSI.
pub fn msi_under_msi(fanout_l1: usize, fanout_l2: usize) -> Composition {
    Composition {
        name: "msi_under_msi".into(),
        levels: vec![
            LevelSpec { label: "l1".into(), ssp: crate::msi(), fanout: fanout_l1 },
            LevelSpec { label: "llc".into(), ssp: crate::msi(), fanout: fanout_l2 },
        ],
    }
}

/// MSI L1s under a MESI outer level: the L2s acquire from the root with
/// MESI (exclusive-clean state, silent upgrade) while serving their L1s
/// with MSI.
pub fn msi_under_mesi(fanout_l1: usize, fanout_l2: usize) -> Composition {
    Composition {
        name: "msi_under_mesi".into(),
        levels: vec![
            LevelSpec { label: "l1".into(), ssp: crate::msi(), fanout: fanout_l1 },
            LevelSpec { label: "llc".into(), ssp: crate::mesi(), fanout: fanout_l2 },
        ],
    }
}

/// A one-level composition over any built-in protocol: `fanout` caches
/// under the root directory. Semantically identical to the flat system at
/// the same cache count — the conformance tests pin that identity.
pub fn flat_composition(name: &str, fanout: usize) -> Option<Composition> {
    let ssp = crate::by_name(name)?;
    Some(Composition {
        name: format!("{name}_flat"),
        levels: vec![LevelSpec { label: "l1".into(), ssp, fanout }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_compositions_validate() {
        msi_under_msi(2, 2).validate().unwrap();
        msi_under_mesi(2, 2).validate().unwrap();
        flat_composition("msi", 3).unwrap().validate().unwrap();
        assert!(flat_composition("nope", 2).is_none());
    }
}
