//! A simplified TSO-CC stable state protocol (§VI-D).
//!
//! TSO-CC (Elver & Nagarajan, HPCA ’14) exploits the TSO consistency model
//! to avoid sharer tracking entirely: the directory never sends
//! invalidations, shared copies go stale when a writer proceeds, and caches
//! *self-invalidate* their shared copies (on timeout or acquire in the real
//! design). Physical-time SWMR is intentionally broken; TSO is preserved.
//!
//! Substitutions relative to the published protocol (design note N10 in
//! DESIGN.md): the timestamp/epoch machinery that decides *when* to
//! self-invalidate is abstracted into a nondeterministic silent S→I decay,
//! which over-approximates every timeout policy; the model checker then
//! verifies the invariants TSO-CC actually promises (single writer, data
//! value at the writer, deadlock freedom) rather than physical SWMR.
//!
//! Structure kept from the paper's §VI-D exercise: a point-to-point-ordered
//! SSP with owner forwarding, acknowledgment-free stores (no invalidations
//! ⇒ nothing to count), and silent shared evictions (no PutS ⇒ no sharer
//! list needed).

use protogen_spec::{Access, Action, Guard, MsgClass, Perm, Ssp, SspBuilder, VirtualNet};

/// Builds the simplified TSO-CC stable state protocol.
///
/// Cache states: I, S (self-invalidating), M. Directory states: I (no
/// copies guaranteed), S (read copies may exist — untracked), M (owned).
///
/// # Example
///
/// ```
/// let ssp = protogen_protocols::tso_cc();
/// // No invalidation message exists: stores are acknowledgment-free.
/// assert!(ssp.msg_by_name("Inv").is_none());
/// ```
pub fn tso_cc() -> Ssp {
    let mut b = SspBuilder::new("TSO-CC");
    // TSO-CC promises TSO, not SC, and its self-invalidations model an
    // epoch: the real design's timestamp expiry drops *all* shared lines
    // acquired in an expired epoch, so the litmus harness fires the decay
    // cache-wide rather than per line (that distinction is load-bearing:
    // per-line decay would admit non-TSO outcomes on MP).
    b.consistency(protogen_spec::MemoryModel::Tso);
    b.si_epoch(true);

    let get_s = b.message("GetS", MsgClass::Request);
    let get_m = b.message("GetM", MsgClass::Request);
    let put_m = b.data_message("PutM", MsgClass::Request);
    let fwd_get_s = b.message("Fwd_GetS", MsgClass::Forward);
    let fwd_get_m = b.message("Fwd_GetM", MsgClass::Forward);
    let data = b.data_ack_message("Data", MsgClass::Response);
    let put_ack = b.message("Put_Ack", MsgClass::Response);
    b.assign_vnet(put_ack, VirtualNet::Forward);

    let i = b.cache_state("I", Perm::None);
    let s = b.cache_state("S", Perm::Read);
    let m = b.cache_state("M", Perm::ReadWrite);

    let di = b.dir_state("I");
    let ds = b.dir_state("S");
    let dm = b.dir_state("M");

    // ----- cache -----
    let req = b.send_req(get_s);
    let chain = b.await_data(data, s);
    b.cache_issue(i, Access::Load, req, chain);
    let req = b.send_req(get_m);
    let chain = b.await_data(data, m);
    b.cache_issue(i, Access::Store, req, chain);
    b.cache_hit(s, Access::Load);
    // Store from S: fetch ownership; no invalidations exist, so the data
    // response alone completes the transaction. The local S copy may be
    // stale (another writer may have run) — the received data is current.
    let req = b.send_req(get_m);
    let chain = b.await_data(data, m);
    b.cache_issue(s, Access::Store, req, chain);
    // Self-invalidation: shared copies are dropped silently (no PutS, no
    // sharer list to clean). The checker exercises this nondeterministically
    // at every opportunity, over-approximating any timeout/acquire policy.
    b.cache_self_invalidate(s, i);
    b.cache_hit(m, Access::Load);
    b.cache_hit(m, Access::Store);
    let req = b.send_req_data(put_m);
    let chain = b.await_ack(put_ack, i);
    b.cache_issue(m, Access::Replacement, req, chain);
    let to_req = b.send_data_to_req(data);
    let to_dir = b.send_data_to_dir(data);
    b.cache_react(m, fwd_get_s, vec![to_req, to_dir], Some(s));
    let to_req = b.send_data_to_req(data);
    b.cache_react(m, fwd_get_m, vec![to_req], Some(i));

    // ----- directory (no sharer list!) -----
    let d = b.send_data_to_req(data);
    b.dir_react(di, get_s, vec![d], Some(ds));
    let d = b.send_data_to_req(data);
    b.dir_react(di, get_m, vec![d, Action::SetOwnerToReq], Some(dm));
    let d = b.send_data_to_req(data);
    b.dir_react(ds, get_s, vec![d], None);
    // Acknowledgment-free store: readers are *not* invalidated; their
    // copies go stale and self-invalidate later. This is the TSO-CC trade.
    let d = b.send_data_to_req(data);
    b.dir_react(ds, get_m, vec![d, Action::SetOwnerToReq], Some(dm));
    let f = b.fwd_to_owner(fwd_get_s);
    let chain = b.await_owner_data(data, ds);
    b.dir_issue(dm, get_s, vec![f, Action::ClearOwner], chain);
    let f = b.fwd_to_owner(fwd_get_m);
    b.dir_react(dm, get_m, vec![f, Action::SetOwnerToReq], None);
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        dm,
        put_m,
        Guard::ReqIsOwner,
        vec![Action::CopyDataFromMsg, pa, Action::ClearOwner],
        Some(di),
    );

    b.build().expect("TSO-CC SSP is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::Trigger;

    #[test]
    fn tso_cc_is_valid() {
        tso_cc().validate().unwrap();
    }

    #[test]
    fn no_invalidations_or_sharer_tracking() {
        let ssp = tso_cc();
        assert!(ssp.msg_by_name("Inv").is_none());
        assert!(ssp.msg_by_name("Inv_Ack").is_none());
        // No directory action ever touches a sharer list.
        for e in &ssp.directory.entries {
            let actions = match &e.effect {
                protogen_spec::Effect::Local { actions, .. } => actions.clone(),
                protogen_spec::Effect::Issue { request, .. } => request.clone(),
            };
            for a in actions {
                assert!(
                    !matches!(
                        a,
                        Action::AddReqToSharers
                            | Action::AddOwnerToSharers
                            | Action::RemoveReqFromSharers
                            | Action::ClearSharers
                    ),
                    "sharer tracking found: {a}"
                );
            }
        }
    }

    #[test]
    fn shared_eviction_is_silent() {
        let ssp = tso_cc();
        let s = ssp.cache.state_by_name("S").unwrap();
        let entries = ssp.cache.entries_for(s, Trigger::Access(Access::Replacement));
        assert_eq!(entries.len(), 1);
        match &entries[0].effect {
            protogen_spec::Effect::Local { actions, next } => {
                assert!(actions.iter().all(|a| !matches!(a, Action::Send(_))));
                assert_eq!(*next, Some(ssp.cache.state_by_name("I").unwrap()));
            }
            other => panic!("expected silent eviction, got {other:?}"),
        }
    }
}
