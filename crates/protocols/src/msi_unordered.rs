//! MSI for an interconnect **without** point-to-point ordering (§VI-C).
//!
//! Two extra handshakes make the protocol order-insensitive:
//!
//! * the directory treats an ownership handoff (`Fwd_GetM`) as a
//!   transaction: the old owner acknowledges the handoff with `Fwd_Ack`,
//!   and the directory blocks until it arrives. This closes the race where
//!   a stale `PutM`'s acknowledgment overtakes the forward and the old
//!   owner drops the only data copy;
//! * `network_ordered = false` makes the generated directory serialize
//!   racing transactions by stalling the second (paper footnote 3).
//!
//! Everything else — invalidation acknowledgments counted by the requestor,
//! the single access after invalidation, defensive acknowledgment of
//! stale invalidations — already works without ordering.

use protogen_spec::{
    Access, Action, Guard, MsgClass, Perm, Ssp, SspBuilder, WaitArc, WaitChain, WaitNode, WaitTo,
};

/// Builds the atomic MSI protocol for unordered networks.
///
/// # Example
///
/// ```
/// let ssp = protogen_protocols::msi_unordered();
/// assert!(!ssp.network_ordered);
/// assert!(ssp.msg_by_name("Fwd_Ack").is_some());
/// ```
pub fn msi_unordered() -> Ssp {
    let mut b = SspBuilder::new("MSI-unordered");
    b.network_ordered(false);

    let get_s = b.message("GetS", MsgClass::Request);
    let get_m = b.message("GetM", MsgClass::Request);
    let put_s = b.message("PutS", MsgClass::Request);
    let put_m = b.data_message("PutM", MsgClass::Request);
    let fwd_get_s = b.message("Fwd_GetS", MsgClass::Forward);
    let fwd_get_m = b.message("Fwd_GetM", MsgClass::Forward);
    let inv = b.message("Inv", MsgClass::Forward);
    let data = b.data_ack_message("Data", MsgClass::Response);
    let inv_ack = b.message("Inv_Ack", MsgClass::Response);
    let put_ack = b.message("Put_Ack", MsgClass::Response);
    // The handshake: the old owner confirms it has processed the handoff.
    let fwd_ack = b.message("Fwd_Ack", MsgClass::Response);

    let i = b.cache_state("I", Perm::None);
    let s = b.cache_state("S", Perm::Read);
    let m = b.cache_state("M", Perm::ReadWrite);

    let di = b.dir_state("I");
    let ds = b.dir_state("S");
    let dm = b.dir_state("M");

    // ----- cache (Table I plus the handshake) -----
    let req = b.send_req(get_s);
    let chain = b.await_data(data, s);
    b.cache_issue(i, Access::Load, req, chain);
    let req = b.send_req(get_m);
    let chain = b.await_data_acks(data, inv_ack, m);
    b.cache_issue(i, Access::Store, req, chain);
    b.cache_hit(s, Access::Load);
    let req = b.send_req(get_m);
    let chain = b.await_data_acks(data, inv_ack, m);
    b.cache_issue(s, Access::Store, req, chain);
    let req = b.send_req(put_s);
    let chain = b.await_ack(put_ack, i);
    b.cache_issue(s, Access::Replacement, req, chain);
    let ack = b.send_to_req(inv_ack);
    b.cache_react(s, inv, vec![ack], Some(i));
    b.cache_hit(m, Access::Load);
    b.cache_hit(m, Access::Store);
    let req = b.send_req_data(put_m);
    let chain = b.await_ack(put_ack, i);
    b.cache_issue(m, Access::Replacement, req, chain);
    let to_req = b.send_data_to_req(data);
    let to_dir = b.send_data_to_dir(data);
    b.cache_react(m, fwd_get_s, vec![to_req, to_dir], Some(s));
    // Ownership handoff: serve the new owner *and* confirm to the
    // directory.
    let to_req = b.send_data_to_req(data);
    let confirm = Action::Send(protogen_spec::SendSpec::new(fwd_ack, protogen_spec::Dst::Dir));
    b.cache_react(m, fwd_get_m, vec![to_req, confirm], Some(i));

    // ----- directory (Table II with blocking handoffs) -----
    let d = b.send_data_to_req(data);
    b.dir_react(di, get_s, vec![d, Action::AddReqToSharers], Some(ds));
    let d = b.send_data_acks_to_req(data);
    b.dir_react(di, get_m, vec![d, Action::SetOwnerToReq], Some(dm));
    let d = b.send_data_to_req(data);
    b.dir_react(ds, get_s, vec![d, Action::AddReqToSharers], None);
    let d = b.send_data_acks_to_req(data);
    let invs = b.inv_sharers(inv);
    b.dir_react(ds, get_m, vec![d, invs, Action::SetOwnerToReq, Action::ClearSharers], Some(dm));
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        ds,
        put_s,
        Guard::ReqIsLastSharer,
        vec![pa, Action::RemoveReqFromSharers],
        Some(di),
    );
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        ds,
        put_s,
        Guard::ReqIsNotLastSharer,
        vec![pa, Action::RemoveReqFromSharers],
        None,
    );
    let f = b.fwd_to_owner(fwd_get_s);
    let chain = b.await_owner_data(data, ds);
    b.dir_issue(
        dm,
        get_s,
        vec![f, Action::AddReqToSharers, Action::AddOwnerToSharers, Action::ClearOwner],
        chain,
    );
    // The handshake transaction: block until the old owner confirms.
    let f = b.fwd_to_owner(fwd_get_m);
    let chain = WaitChain {
        nodes: vec![WaitNode {
            tag: "A".into(),
            arcs: vec![WaitArc {
                msg: fwd_ack,
                guards: vec![],
                actions: vec![],
                to: WaitTo::Done(dm),
            }],
        }],
    };
    b.dir_issue(dm, get_m, vec![f, Action::SetOwnerToReq], chain);
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        dm,
        put_m,
        Guard::ReqIsOwner,
        vec![Action::CopyDataFromMsg, pa, Action::ClearOwner],
        Some(di),
    );

    b.build().expect("MSI-unordered SSP is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::Trigger;

    #[test]
    fn unordered_is_valid() {
        let ssp = msi_unordered();
        assert!(!ssp.network_ordered);
    }

    #[test]
    fn handoff_blocks_for_confirmation() {
        let ssp = msi_unordered();
        let dm = ssp.directory.state_by_name("M").unwrap();
        let get_m = ssp.msg_by_name("GetM").unwrap();
        let entries = ssp.directory.entries_for(dm, Trigger::Msg(get_m));
        assert!(matches!(entries[0].effect, protogen_spec::Effect::Issue { .. }));
    }
}
