//! A self-invalidate / self-downgrade (SI/SD) stable state protocol.
//!
//! The VIPS-M / "mending fences" protocol family (Ros & Kaxiras, PACT ’12;
//! related work in PAPERS.md) removes *both* halves of the directory's
//! coherence work: readers self-invalidate their copies at
//! synchronization points instead of being invalidated, and writers
//! self-downgrade — write back and drop to read-only — instead of being
//! probed. The directory degenerates into an owner registry plus memory:
//! it never forwards, never invalidates, and never stalls; every request
//! is granted immediately from the directory's (possibly stale) copy.
//!
//! The price is the memory model: between sync points a reader may see
//! arbitrarily stale data and two writers may coexist, so the protocol
//! promises only `weak` consistency — deadlock freedom is checked by the
//! model checker, and the litmus harness (`crates/litmus`) verifies the
//! sync-point story: self-downgrade publishes, self-invalidate acquires.
//!
//! Self-invalidations here are *per line* (`si_epoch = false`), unlike
//! TSO-CC's whole-cache epoch decay: SI/SD designs track sync points per
//! block (or flash-clear selectively), and per-line decay is exactly what
//! makes the family weaker than TSO on MP-shaped tests.

use protogen_spec::{Access, Action, Guard, MemoryModel, MsgClass, Perm, Ssp, SspBuilder};

/// Builds the SI/SD stable state protocol.
///
/// Cache states: I, S (self-invalidating), M (self-downgrading).
/// Directory states: I (memory owns the block), M (some cache owns it —
/// the directory's copy may be stale).
///
/// # Example
///
/// ```
/// let ssp = protogen_protocols::si_sd();
/// // The directory never forwards or invalidates: no forward-class
/// // message exists at all.
/// assert!(ssp.messages.iter().all(|m| m.class != protogen_spec::MsgClass::Forward));
/// assert_eq!(ssp.consistency, protogen_spec::MemoryModel::Weak);
/// ```
pub fn si_sd() -> Ssp {
    let mut b = SspBuilder::new("SI-SD");
    b.consistency(MemoryModel::Weak);
    // Per-line self-invalidation (see the module docs).
    b.si_epoch(false);

    let get_s = b.message("GetS", MsgClass::Request);
    let get_m = b.message("GetM", MsgClass::Request);
    let wb_data = b.data_message("WbData", MsgClass::Request);
    let data = b.data_message("Data", MsgClass::Response);
    let wb_ack = b.message("WbAck", MsgClass::Response);

    let i = b.cache_state("I", Perm::None);
    let s = b.cache_state("S", Perm::Read);
    let m = b.cache_state("M", Perm::ReadWrite);

    let di = b.dir_state("I");
    let dm = b.dir_state("M");

    // ----- cache -----
    let req = b.send_req(get_s);
    let chain = b.await_data(data, s);
    b.cache_issue(i, Access::Load, req, chain);
    let req = b.send_req(get_m);
    let chain = b.await_data(data, m);
    b.cache_issue(i, Access::Store, req, chain);
    // Loads in S may return stale data — the SI/SD trade. Freshness is
    // recovered by self-invalidating and re-fetching at a sync point.
    b.cache_hit(s, Access::Load);
    let req = b.send_req(get_m);
    let chain = b.await_data(data, m);
    b.cache_issue(s, Access::Store, req, chain);
    b.cache_hit(m, Access::Load);
    b.cache_hit(m, Access::Store);
    // Self-invalidation: the acquire half. Silent; per line.
    b.cache_self_invalidate(s, i);
    // Self-downgrade: the release half. Write back, keep a read copy.
    let req = b.send_req_data(wb_data);
    let chain = b.await_ack(wb_ack, s);
    b.cache_self_downgrade(m, req, chain);

    // ----- directory: an owner registry that always grants -----
    // The directory handles every message in every state immediately (no
    // transient states, no stalls), so deadlock freedom is structural.
    let d = b.send_data_to_req(data);
    b.dir_react(di, get_s, vec![d], None);
    let d = b.send_data_to_req(data);
    b.dir_react(di, get_m, vec![d, Action::SetOwnerToReq], Some(dm));
    // A late writeback from an owner that was already superseded and
    // acknowledged away: ack it again, nothing to record.
    let ack = b.send_to_req(wb_ack);
    b.dir_react(di, wb_data, vec![ack], None);
    // Owned block: grant the (possibly stale) directory copy — readers
    // self-invalidate to observe the owner's writes after it downgrades.
    let d = b.send_data_to_req(data);
    b.dir_react(dm, get_s, vec![d], None);
    // A second writer: reassign ownership without probing the first. Two
    // write-permission copies may now coexist — `weak` promises neither
    // SWMR nor single-writer; the last writeback wins.
    let d = b.send_data_to_req(data);
    b.dir_react(dm, get_m, vec![d, Action::SetOwnerToReq], None);
    // The current owner's writeback publishes its data.
    let ack = b.send_to_req(wb_ack);
    b.dir_react_guarded(
        dm,
        wb_data,
        Guard::ReqIsOwner,
        vec![Action::CopyDataFromMsg, ack, Action::ClearOwner],
        Some(di),
    );
    // A superseded owner's writeback: acknowledge (its await must
    // complete) but discard — the newer owner's data wins.
    let ack = b.send_to_req(wb_ack);
    b.dir_react_guarded(dm, wb_data, Guard::ReqIsNotOwner, vec![ack], None);

    b.build().expect("SI-SD SSP is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::{EntryNote, Trigger};

    #[test]
    fn si_sd_is_valid() {
        si_sd().validate().unwrap();
    }

    #[test]
    fn declares_weak_per_line_semantics() {
        let ssp = si_sd();
        assert_eq!(ssp.consistency, MemoryModel::Weak);
        assert!(!ssp.si_epoch);
    }

    #[test]
    fn si_and_sd_entries_carry_their_notes() {
        let ssp = si_sd();
        let s = ssp.cache.state_by_name("S").unwrap();
        let m = ssp.cache.state_by_name("M").unwrap();
        let si = ssp.cache.entries_for(s, Trigger::Access(Access::Replacement));
        assert_eq!(si.len(), 1);
        assert_eq!(si[0].note, EntryNote::SelfInvalidate);
        let sd = ssp.cache.entries_for(m, Trigger::Access(Access::Replacement));
        assert_eq!(sd.len(), 1);
        assert_eq!(sd[0].note, EntryNote::SelfDowngrade);
        // SD is a transaction (the writeback awaits its ack), SI is local.
        assert!(matches!(sd[0].effect, protogen_spec::Effect::Issue { .. }));
        assert!(matches!(si[0].effect, protogen_spec::Effect::Local { .. }));
    }

    #[test]
    fn directory_never_forwards_or_invalidates() {
        let ssp = si_sd();
        assert!(ssp.messages.iter().all(|m| m.class != MsgClass::Forward));
        // Every directory entry is Local (no transient directory states)
        // and never sends to anyone but the requestor.
        for e in &ssp.directory.entries {
            match &e.effect {
                protogen_spec::Effect::Local { actions, .. } => {
                    for a in actions {
                        if let Action::Send(sp) = a {
                            assert_eq!(sp.dst, protogen_spec::Dst::Req, "directory sent {a}");
                        }
                    }
                }
                other => panic!("directory has a transient effect: {other:?}"),
            }
        }
    }
}
