//! The MOSI stable state protocol: MSI plus an Owned state.
//!
//! O holds the block dirty but shared: the owner supplies data to readers
//! without writing back to the LLC. This is the paper's preprocessing
//! example (Tables III and IV): `Fwd_GetS` can arrive at M *and* O, and the
//! directory knows which (its own O state mirrors the owner's O state), so
//! preprocessing renames O's copy to `O_Fwd_GetS`.
//!
//! The M→O handoff means the directory never waits for a writeback on a
//! read: every directory reaction is single-step, so the generated MOSI
//! directory has no transient states at all.

use protogen_spec::{
    Access, AckSrc, Action, DataSrc, Dst, Guard, MsgClass, Perm, ReqField, SendSpec, Ssp,
    SspBuilder, VirtualNet,
};

/// Builds the atomic MOSI stable state protocol.
///
/// Cache states: I, S, O (owned: dirty + shared, read permission), M.
/// Directory states: I, S, O, M.
///
/// The store-upgrade from O keeps the data (the directory answers with an
/// acknowledgment count only), and a non-owner GetM at O is forwarded to
/// the owner with the invalidation count piggybacked so the owner's data
/// response carries it (`AckSrc::FromMsg`).
///
/// # Example
///
/// ```
/// let ssp = protogen_protocols::mosi();
/// assert_eq!(ssp.cache.states.len(), 4);
/// assert_eq!(ssp.directory.states.len(), 4);
/// ```
pub fn mosi() -> Ssp {
    let mut b = SspBuilder::new("MOSI");

    let get_s = b.message("GetS", MsgClass::Request);
    let get_m = b.message("GetM", MsgClass::Request);
    let put_s = b.message("PutS", MsgClass::Request);
    let put_m = b.data_message("PutM", MsgClass::Request);
    let put_o = b.data_message("PutO", MsgClass::Request);
    // Fwd_GetS arrives at M and O in this (natural) specification;
    // preprocessing renames the O copy (Tables III/IV).
    let fwd_get_s = b.message("Fwd_GetS", MsgClass::Forward);
    // Fwd_GetM likewise arrives at M and O; the O variant carries the
    // invalidation count for the owner to piggyback onto its data response.
    let fwd_get_m = b.message("Fwd_GetM", MsgClass::Forward);
    let fwd_get_m_o = b.ack_count_message("Fwd_GetM_O", MsgClass::Forward);
    let inv = b.message("Inv", MsgClass::Forward);
    let data = b.data_ack_message("Data", MsgClass::Response);
    let ack_count = b.ack_count_message("AckCount", MsgClass::Response);
    let inv_ack = b.message("Inv_Ack", MsgClass::Response);
    let put_ack = b.message("Put_Ack", MsgClass::Response);
    b.assign_vnet(put_ack, VirtualNet::Forward);

    let i = b.cache_state("I", Perm::None);
    let s = b.cache_state("S", Perm::Read);
    let o = b.cache_state_full("O", Perm::Read, true);
    let m = b.cache_state("M", Perm::ReadWrite);

    let di = b.dir_state("I");
    let ds = b.dir_state("S");
    let do_ = b.dir_state("O");
    let dm = b.dir_state("M");

    // ----- cache -----
    // I
    let req = b.send_req(get_s);
    let chain = b.await_data(data, s);
    b.cache_issue(i, Access::Load, req, chain);
    let req = b.send_req(get_m);
    let chain = b.await_data_acks(data, inv_ack, m);
    b.cache_issue(i, Access::Store, req, chain);
    // S
    b.cache_hit(s, Access::Load);
    let req = b.send_req(get_m);
    let chain = b.await_data_acks(data, inv_ack, m);
    b.cache_issue(s, Access::Store, req, chain);
    let req = b.send_req(put_s);
    let chain = b.await_ack(put_ack, i);
    b.cache_issue(s, Access::Replacement, req, chain);
    let ack = b.send_to_req(inv_ack);
    b.cache_react(s, inv, vec![ack], Some(i));
    // O: loads hit; stores upgrade in place (the dirty copy stays valid, so
    // the directory answers with a count, not data); replacements write
    // back with PutO.
    b.cache_hit(o, Access::Load);
    let req = b.send_req(get_m);
    let chain = b.await_count_acks(ack_count, inv_ack, m);
    b.cache_issue(o, Access::Store, req, chain);
    let req = b.send_req_data(put_o);
    let chain = b.await_ack(put_ack, i);
    b.cache_issue(o, Access::Replacement, req, chain);
    // O as data supplier: GetS readers are served while staying O; a GetM
    // winner gets the data plus the piggybacked invalidation count.
    let to_req = b.send_data_to_req(data);
    b.cache_react(o, fwd_get_s, vec![to_req], None);
    let to_req = Action::Send(
        SendSpec::new(data, Dst::Req)
            .data(DataSrc::OwnBlock)
            .acks(AckSrc::FromMsg)
            .req_field(ReqField::FromMsg),
    );
    b.cache_react(o, fwd_get_m_o, vec![to_req], Some(i));
    // M
    b.cache_hit(m, Access::Load);
    b.cache_hit(m, Access::Store);
    let req = b.send_req_data(put_m);
    let chain = b.await_ack(put_ack, i);
    b.cache_issue(m, Access::Replacement, req, chain);
    // M + Fwd_GetS: serve the reader and *keep* the dirty block as O — the
    // MOSI difference from MSI (no writeback to the directory).
    let to_req = b.send_data_to_req(data);
    b.cache_react(m, fwd_get_s, vec![to_req], Some(o));
    let to_req = b.send_data_to_req(data);
    b.cache_react(m, fwd_get_m, vec![to_req], Some(i));

    // ----- directory -----
    // I
    let d = b.send_data_to_req(data);
    b.dir_react(di, get_s, vec![d, Action::AddReqToSharers], Some(ds));
    let d = b.send_data_acks_to_req(data);
    b.dir_react(di, get_m, vec![d, Action::SetOwnerToReq], Some(dm));
    // S
    let d = b.send_data_to_req(data);
    b.dir_react(ds, get_s, vec![d, Action::AddReqToSharers], None);
    let d = b.send_data_acks_to_req(data);
    let invs = b.inv_sharers(inv);
    b.dir_react(ds, get_m, vec![d, invs, Action::SetOwnerToReq, Action::ClearSharers], Some(dm));
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        ds,
        put_s,
        Guard::ReqIsLastSharer,
        vec![pa, Action::RemoveReqFromSharers],
        Some(di),
    );
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        ds,
        put_s,
        Guard::ReqIsNotLastSharer,
        vec![pa, Action::RemoveReqFromSharers],
        None,
    );
    // O: the owner supplies readers; no directory transient needed.
    let f = b.fwd_to_owner(fwd_get_s);
    b.dir_react(do_, get_s, vec![f, Action::AddReqToSharers], None);
    // Owner upgrade: count only, invalidate the other sharers.
    let cnt = Action::Send(
        SendSpec::new(ack_count, Dst::Req)
            .acks(AckSrc::SharersExceptReqCount)
            .req_field(ReqField::FromMsg),
    );
    let invs = b.inv_sharers(inv);
    b.dir_react_guarded(
        do_,
        get_m,
        Guard::ReqIsOwner,
        vec![cnt, invs, Action::ClearSharers],
        Some(dm),
    );
    // Non-owner GetM: forward to the owner with the count piggybacked, and
    // invalidate the other sharers.
    let f = Action::Send(
        SendSpec::new(fwd_get_m_o, Dst::Owner)
            .acks(AckSrc::SharersExceptReqCount)
            .req_field(ReqField::FromMsg),
    );
    let invs = b.inv_sharers(inv);
    b.dir_react_guarded(
        do_,
        get_m,
        Guard::ReqIsNotOwner,
        vec![f, invs, Action::SetOwnerToReq, Action::ClearSharers],
        Some(dm),
    );
    let pa = b.send_to_req(put_ack);
    b.dir_react(do_, put_s, vec![pa, Action::RemoveReqFromSharers], None);
    // Owner writeback from O: land in S when sharers remain, I otherwise.
    // The ReqIsOwner conjunct matters under concurrency: a *stale* PutO
    // from a previous owner must not install its (old) data — the
    // synthesized stale-Put rule acknowledges it instead.
    let pa = b.send_to_req(put_ack);
    b.dir_react_guards(
        do_,
        put_o,
        vec![Guard::ReqIsOwner, Guard::SharersEmpty],
        vec![Action::CopyDataFromMsg, pa, Action::ClearOwner],
        Some(di),
    );
    let pa = b.send_to_req(put_ack);
    b.dir_react_guards(
        do_,
        put_o,
        vec![Guard::ReqIsOwner, Guard::SharersNonEmpty],
        vec![Action::CopyDataFromMsg, pa, Action::ClearOwner],
        Some(ds),
    );
    // M
    let f = b.fwd_to_owner(fwd_get_s);
    b.dir_react(dm, get_s, vec![f, Action::AddReqToSharers], Some(do_));
    let f = b.fwd_to_owner(fwd_get_m);
    b.dir_react(dm, get_m, vec![f, Action::SetOwnerToReq], None);
    let pa = b.send_to_req(put_ack);
    b.dir_react_guarded(
        dm,
        put_m,
        Guard::ReqIsOwner,
        vec![Action::CopyDataFromMsg, pa, Action::ClearOwner],
        Some(di),
    );

    b.build().expect("MOSI SSP is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_spec::Trigger;

    #[test]
    fn mosi_is_valid() {
        let ssp = mosi();
        assert_eq!(ssp.name, "MOSI");
    }

    #[test]
    fn fwd_gets_arrives_at_m_and_o_before_preprocessing() {
        // Tables III/IV: the natural SSP lets Fwd_GetS arrive at both M and
        // O; preprocessing (tested in protogen-core) renames O's copy.
        let ssp = mosi();
        let f = ssp.msg_by_name("Fwd_GetS").unwrap();
        let arrivals: Vec<_> = ssp
            .cache
            .state_ids()
            .filter(|&s| ssp.cache.handles(s, Trigger::Msg(f)))
            .map(|s| ssp.cache.state(s).name.clone())
            .collect();
        assert_eq!(arrivals, vec!["O".to_string(), "M".to_string()]);
    }

    #[test]
    fn owner_upgrade_awaits_count_not_data() {
        let ssp = mosi();
        let o = ssp.cache.state_by_name("O").unwrap();
        let entries = ssp.cache.entries_for(o, Trigger::Access(Access::Store));
        let protogen_spec::Effect::Issue { chain, .. } = &entries[0].effect else {
            panic!("O store should issue");
        };
        assert_eq!(chain.nodes[0].tag, "AC");
    }
}
