//! Multi-threaded configuration sweeps over the
//! `protocol × stalling × workload × cache-count × network` grid.
//!
//! Cells are sharded statically across workers (`cell.index % threads`,
//! the same deterministic-by-construction discipline as the model
//! checker's sharded explorer) and every cell derives its own RNG seed
//! from the sweep seed and the cell index alone — never from thread
//! identity or timing — so the merged report is **byte-identical for any
//! thread count**. CI diffs the JSON to enforce exactly that.

use crate::config::{LatencyDist, NetModel, NetworkConfig, SimConfig};
use crate::engine::simulate;
use crate::stats::Json;
use crate::workload::Workload;
use crate::{SimError, SimResult};
use protogen_core::{generate, GenConfig};

/// A named interconnect point of the sweep grid.
#[derive(Debug, Clone)]
pub struct NetPoint {
    /// Grid-dimension name (`ordered`, `unordered`, …).
    pub name: String,
    /// The interconnect configuration behind the name.
    pub config: NetworkConfig,
}

impl NetPoint {
    /// The default ordered point: fixed 8-cycle hops.
    pub fn ordered() -> NetPoint {
        NetPoint { name: "ordered".into(), config: NetworkConfig::ordered(8) }
    }

    /// The default unordered point: uniform 4–16-cycle hops, so latency
    /// jitter actually reorders.
    pub fn unordered() -> NetPoint {
        NetPoint {
            name: "unordered".into(),
            config: NetworkConfig::unordered(LatencyDist::Uniform { lo: 4, hi: 16 }),
        }
    }
}

/// The sweep grid and per-run parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Protocol CLI names (see `protogen_protocols::NAMES`).
    pub protocols: Vec<String>,
    /// Generation configs: `true` = stalling, `false` = non-stalling.
    pub stalling: Vec<bool>,
    /// Workloads to run.
    pub workloads: Vec<Workload>,
    /// Cache counts.
    pub cache_counts: Vec<usize>,
    /// Interconnect points.
    pub networks: Vec<NetPoint>,
    /// Blocks in play per run.
    pub n_addrs: usize,
    /// Accesses each core performs per run.
    pub accesses_per_core: usize,
    /// Core think time between accesses.
    pub think_time: u64,
    /// Sweep seed; each cell derives its own from this and its index.
    pub seed: u64,
    /// Worker threads; `0` means all available cores. Results are
    /// identical for every value.
    pub threads: usize,
    /// Per-run cycle safety limit.
    pub max_cycles: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            protocols: vec!["msi".into(), "mesi".into()],
            stalling: vec![true, false],
            workloads: vec![
                Workload::Uniform { store_pct: 50 },
                Workload::Zipfian { store_pct: 50 },
                Workload::ProducerConsumer,
                Workload::FalseSharing,
            ],
            cache_counts: vec![2, 4],
            networks: vec![NetPoint::ordered(), NetPoint::unordered()],
            n_addrs: 4,
            accesses_per_core: 200,
            think_time: 2,
            seed: 0xC0FFEE,
            threads: 0,
            max_cycles: 50_000_000,
        }
    }
}

/// One cell of the expanded grid.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Position in the deterministic grid order.
    pub index: usize,
    /// Protocol CLI name.
    pub protocol: String,
    /// Stalling (`true`) or non-stalling generation.
    pub stalling: bool,
    /// The workload.
    pub workload: Workload,
    /// Cache count.
    pub n_caches: usize,
    /// The interconnect point.
    pub network: NetPoint,
}

impl SweepCell {
    /// Stable cell name, also used for `--out` file names:
    /// `msi.non-stall.uniform-50.c2.ordered`.
    pub fn label(&self) -> String {
        format!(
            "{}.{}.{}.c{}.{}",
            self.protocol,
            if self.stalling { "stall" } else { "non-stall" },
            self.workload.label(),
            self.n_caches,
            self.network.name
        )
    }
}

impl SweepConfig {
    /// Expands the grid in deterministic nested order (protocol outermost,
    /// network innermost).
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut out = Vec::new();
        for protocol in &self.protocols {
            for &stalling in &self.stalling {
                for workload in &self.workloads {
                    for &n_caches in &self.cache_counts {
                        for network in &self.networks {
                            out.push(SweepCell {
                                index: out.len(),
                                protocol: protocol.clone(),
                                stalling,
                                workload: workload.clone(),
                                n_caches,
                                network: network.clone(),
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// The worker count actually used.
    pub fn effective_threads(&self) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        };
        t.clamp(1, self.cells().len().max(1))
    }

    /// Human-readable grid listing for `protogen sweep --list`: one line
    /// per cell plus a dimension summary.
    pub fn listing(&self) -> String {
        let cells = self.cells();
        let mut out = String::new();
        for c in &cells {
            out.push_str(&format!("{:>4}  {}\n", c.index, c.label()));
        }
        out.push_str(&format!(
            "{} cells = {} protocols x {} configs x {} workloads x {} cache counts x {} networks \
             ({} accesses/core each, seed {:#x})\n",
            cells.len(),
            self.protocols.len(),
            self.stalling.len(),
            self.workloads.len(),
            self.cache_counts.len(),
            self.networks.len(),
            self.accesses_per_core,
            self.seed,
        ));
        out
    }
}

/// SplitMix64 — derives one cell's seed from the sweep seed and the cell
/// index, so cell results are independent of thread assignment.
fn cell_seed(sweep_seed: u64, index: usize) -> u64 {
    let mut z = sweep_seed ^ (index as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// One completed cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: SweepCell,
    /// The derived per-cell seed.
    pub seed: u64,
    /// Whether the cell's unordered network was clamped to FIFO delivery
    /// because the protocol was generated for ordered networks (latency
    /// jitter still applies; reordering would feed the controllers
    /// messages they provably cannot handle).
    pub fifo_clamped: bool,
    /// The measurements.
    pub stats: SimResult,
}

impl CellResult {
    /// The cell as an ordered JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::Str(self.cell.label())),
            ("protocol", Json::Str(self.cell.protocol.clone())),
            (
                "config",
                Json::Str(if self.cell.stalling { "stalling" } else { "non-stalling" }.into()),
            ),
            ("workload", Json::Str(self.cell.workload.label())),
            ("caches", Json::U64(self.cell.n_caches as u64)),
            ("network", Json::Str(self.cell.network.name.clone())),
            ("fifo_clamped", Json::Bool(self.fifo_clamped)),
            ("seed", Json::U64(self.seed)),
            ("stats", self.stats.to_json()),
        ])
    }
}

/// All cells of one sweep, in grid order.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Completed cells, ordered by [`SweepCell::index`].
    pub cells: Vec<CellResult>,
}

impl SweepReport {
    /// The whole sweep as one JSON document. Contains no wall-clock
    /// timing, so the rendering is byte-identical for a fixed seed at any
    /// thread count.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cells", Json::U64(self.cells.len() as u64)),
            ("results", Json::Arr(self.cells.iter().map(CellResult::to_json).collect())),
        ])
    }
}

/// Runs every cell of the grid across [`SweepConfig::effective_threads`]
/// workers.
///
/// # Errors
///
/// The lowest-indexed failing cell's error (unknown protocol, generation
/// failure, or simulation failure), independent of thread schedule.
pub fn run_sweep(cfg: &SweepConfig) -> Result<SweepReport, SimError> {
    let cells = cfg.cells();
    if cells.is_empty() {
        return Ok(SweepReport { cells: Vec::new() });
    }
    let threads = cfg.effective_threads();
    let mut merged: Vec<Option<Result<CellResult, SimError>>> = Vec::new();
    merged.resize_with(cells.len(), || None);

    let worker_results: Vec<Vec<(usize, Result<CellResult, SimError>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let my_cells: Vec<SweepCell> =
                    cells.iter().filter(|c| c.index % threads == w).cloned().collect();
                s.spawn(move || my_cells.into_iter().map(|c| (c.index, run_cell(cfg, c))).collect())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
    });
    for (idx, res) in worker_results.into_iter().flatten() {
        merged[idx] = Some(res);
    }

    let mut out = Vec::with_capacity(merged.len());
    for slot in merged {
        out.push(slot.expect("every cell sharded to exactly one worker")?);
    }
    Ok(SweepReport { cells: out })
}

fn run_cell(cfg: &SweepConfig, cell: SweepCell) -> Result<CellResult, SimError> {
    let ssp = protogen_protocols::by_name(&cell.protocol).ok_or_else(|| {
        SimError::Workload(format!(
            "unknown protocol `{}` (try {})",
            cell.protocol,
            protogen_protocols::NAMES.join(", ")
        ))
    })?;
    let gen_cfg = if cell.stalling { GenConfig::stalling() } else { GenConfig::non_stalling() };
    let g = generate(&ssp, &gen_cfg)
        .map_err(|e| SimError::Workload(format!("{}: generation failed: {e}", cell.label())))?;
    let mut network = cell.network.config;
    let fifo_clamped = ssp.network_ordered && network.model == NetModel::Unordered;
    if fifo_clamped {
        network.model = NetModel::Ordered;
    }
    let seed = cell_seed(cfg.seed, cell.index);
    let sim_cfg = SimConfig {
        n_caches: cell.n_caches,
        n_addrs: cfg.n_addrs,
        think_time: cfg.think_time,
        accesses_per_core: cfg.accesses_per_core,
        workload: cell.workload.clone(),
        network,
        seed,
        max_cycles: cfg.max_cycles,
        collect_coverage: false,
    };
    let stats = simulate(&g.cache, &g.directory, &sim_cfg)
        .map_err(|e| SimError::Workload(format!("{}: {e}", cell.label())))?;
    Ok(CellResult { cell, seed, fifo_clamped, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expands_in_deterministic_order() {
        let cfg = SweepConfig::default();
        let cells = cfg.cells();
        assert_eq!(cells.len(), 2 * 2 * 4 * 2 * 2);
        assert_eq!(cells[0].label(), "msi.stall.uniform-50.c2.ordered");
        assert_eq!(cells.last().unwrap().label(), "mesi.non-stall.false-sharing.c4.unordered");
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        let listing = cfg.listing();
        assert!(listing.contains("64 cells"), "{listing}");
        assert!(listing.contains("msi.stall.uniform-50.c2.ordered"), "{listing}");
    }

    #[test]
    fn cell_seeds_depend_on_index_not_thread() {
        assert_ne!(cell_seed(1, 0), cell_seed(1, 1));
        assert_eq!(cell_seed(1, 5), cell_seed(1, 5));
    }

    #[test]
    fn unknown_protocol_is_a_deterministic_error() {
        let cfg = SweepConfig { protocols: vec!["nonesuch".into()], ..SweepConfig::default() };
        let err = run_sweep(&cfg).unwrap_err();
        assert!(err.to_string().contains("unknown protocol"), "{err}");
    }

    #[test]
    fn small_sweep_is_thread_count_invariant() {
        let base = SweepConfig {
            workloads: vec![Workload::Uniform { store_pct: 50 }, Workload::ProducerConsumer],
            cache_counts: vec![2],
            accesses_per_core: 30,
            ..SweepConfig::default()
        };
        let one = run_sweep(&SweepConfig { threads: 1, ..base.clone() }).unwrap();
        let four = run_sweep(&SweepConfig { threads: 4, ..base }).unwrap();
        assert_eq!(one.to_json().render(), four.to_json().render());
    }
}
