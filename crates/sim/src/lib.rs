//! Workload-driven performance simulation of generated protocols.
//!
//! The ProtoGen paper motivates non-stalling protocols by performance:
//! stalling "will delay the start of the coherence permission epoch" and
//! "block incoming coherence messages" (§V-D2), and §VII evaluates the
//! generated concurrent protocols under load. This crate measures that
//! claim instead of asserting it: the *generated* controllers — the same
//! FSMs the model checker verified, executed through the same
//! `protogen-runtime` semantics — run over modelled interconnects under
//! synthetic and trace-driven workloads.
//!
//! The subsystem:
//!
//! * [`NetworkConfig`] — pluggable interconnects: ordered point-to-point
//!   or unordered delivery, fixed / uniform / geometric hop latencies,
//!   and bounded buffers with backpressure;
//! * [`Workload`] — synthetic sharing patterns (uniform-random, Zipfian
//!   hot-set, producer–consumer, migratory, false-sharing ping-pong,
//!   private) plus a replayable `.trc` text trace format;
//! * [`simulate`] — the discrete-event engine: N cores over `n_addrs`
//!   independent blocks, at most one delivery per node per cycle, stalls
//!   blocking a block's channel lane;
//! * [`SimResult`] — latency percentiles, hit/miss/stall counts,
//!   directory occupancy, messages per transaction, rendered through a
//!   deterministic JSON writer ([`Json`]);
//! * [`run_sweep`] — a multi-threaded driver fanning the
//!   `protocol × stalling × workload × cache-count × network` grid across
//!   workers with byte-identical results at any thread count.
//!
//! # Example
//!
//! ```
//! use protogen_core::{generate, GenConfig};
//! use protogen_sim::{simulate, SimConfig};
//!
//! let g = generate(&protogen_protocols::msi(), &GenConfig::non_stalling()).unwrap();
//! let cfg = SimConfig { accesses_per_core: 50, ..SimConfig::default() };
//! let r = simulate(&g.cache, &g.directory, &cfg).unwrap();
//! assert_eq!(r.completed, 50 * cfg.n_caches);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod network;
mod stats;
mod sweep;
mod workload;

pub use config::{LatencyDist, NetModel, NetworkConfig, SimConfig};
pub use engine::simulate;
pub use stats::{Histogram, Json, SimResult};
pub use sweep::{run_sweep, CellResult, NetPoint, SweepCell, SweepConfig, SweepReport};
pub use workload::{parse_trace, render_trace, Op, TraceOp, Workload};

use protogen_runtime::ExecError;
use std::error::Error;
use std::fmt;

/// Why a simulation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The generated FSM misbehaved (a generator bug; the model checker
    /// rules this out for verified protocols).
    Exec(ExecError),
    /// A controller received a message it has no transition for — usually
    /// an ordered-network protocol run over a reordering interconnect.
    UnexpectedMessage(String),
    /// The cycle safety limit elapsed without completing the workload.
    Livelock {
        /// The configured limit that was exceeded.
        cycles: u64,
    },
    /// The workload or configuration is invalid for the simulated system.
    Workload(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Exec(e) => write!(f, "execution error: {e}"),
            SimError::UnexpectedMessage(d) => {
                write!(f, "unexpected message: {d} (protocol/network mismatch?)")
            }
            SimError::Livelock { cycles } => {
                write!(f, "simulation exceeded {cycles} cycles (livelock?)")
            }
            SimError::Workload(d) => write!(f, "invalid workload: {d}"),
        }
    }
}

impl Error for SimError {}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> Self {
        SimError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_core::{generate, GenConfig};

    fn run(cfg_gen: GenConfig, workload: Workload) -> SimResult {
        let g = generate(&protogen_protocols::msi(), &cfg_gen).unwrap();
        let cfg = SimConfig { accesses_per_core: 100, workload, ..SimConfig::default() };
        simulate(&g.cache, &g.directory, &cfg).unwrap()
    }

    #[test]
    fn workload_completes_all_accesses() {
        let r = run(GenConfig::non_stalling(), Workload::Uniform { store_pct: 50 });
        assert_eq!(r.completed, 4 * 100);
        assert_eq!(r.hits + r.misses, r.completed);
        assert!(r.cycles > 0);
        assert!(r.messages > 0);
        assert!(r.p50_latency <= r.p95_latency && r.p95_latency <= r.p99_latency);
        assert!(r.p99_latency <= r.max_latency);
        assert!(r.msgs_per_miss >= 2.0, "a miss needs at least request + response");
        assert!(r.dir_occupancy > 0.0 && r.dir_occupancy < 1.0);
    }

    #[test]
    fn nonstalling_never_loses_to_stalling_under_contention() {
        // The paper's performance claim (E10): under racing transactions
        // the non-stalling protocol finishes no later and stalls less.
        let st = run(GenConfig::stalling(), Workload::FalseSharing);
        let ns = run(GenConfig::non_stalling(), Workload::FalseSharing);
        assert!(
            ns.cycles <= st.cycles,
            "non-stalling {} cycles vs stalling {}",
            ns.cycles,
            st.cycles
        );
        assert!(ns.stall_cycles <= st.stall_cycles);
    }

    #[test]
    fn private_workload_has_no_contention_gap() {
        let st = run(GenConfig::stalling(), Workload::Private);
        let ns = run(GenConfig::non_stalling(), Workload::Private);
        // Without racing transactions the two protocols behave identically.
        assert_eq!(st.cycles, ns.cycles);
        assert_eq!(st.stall_cycles, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(GenConfig::non_stalling(), Workload::Migratory);
        let b = run(GenConfig::non_stalling(), Workload::Migratory);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.to_json().render(), b.to_json().render());
    }

    #[test]
    fn all_protocols_simulate_cleanly_on_every_synthetic_workload() {
        for ssp in protogen_protocols::all() {
            for gc in [GenConfig::stalling(), GenConfig::non_stalling()] {
                let g = generate(&ssp, &gc).unwrap();
                for workload in Workload::synthetic() {
                    let cfg = SimConfig {
                        accesses_per_core: 30,
                        n_caches: 3,
                        n_addrs: 3,
                        workload: workload.clone(),
                        ..SimConfig::default()
                    };
                    let r = simulate(&g.cache, &g.directory, &cfg).unwrap_or_else(|e| {
                        panic!("{} ({:?}, {workload}): {e}", ssp.name, gc.concurrency)
                    });
                    assert_eq!(r.completed, 3 * 30, "{} under {workload}", ssp.name);
                }
            }
        }
    }

    #[test]
    fn unordered_protocol_survives_a_reordering_network() {
        let ssp = protogen_protocols::msi_unordered();
        let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
        let cfg = SimConfig {
            accesses_per_core: 60,
            network: NetworkConfig::unordered(LatencyDist::Uniform { lo: 2, hi: 24 }),
            ..SimConfig::default()
        };
        let r = simulate(&g.cache, &g.directory, &cfg).unwrap();
        assert_eq!(r.completed, 60 * 4);
    }

    #[test]
    fn bounded_buffers_backpressure_but_complete() {
        let g = generate(&protogen_protocols::msi(), &GenConfig::non_stalling()).unwrap();
        let tight = SimConfig {
            accesses_per_core: 80,
            network: NetworkConfig { capacity: 1, ..NetworkConfig::default() },
            workload: Workload::FalseSharing,
            ..SimConfig::default()
        };
        let r = simulate(&g.cache, &g.directory, &tight).unwrap();
        assert_eq!(r.completed, 80 * 4);
        assert!(r.peak_channel_depth <= 1, "capacity bound violated: {}", r.peak_channel_depth);
        assert!(r.backpressure_cycles > 0, "1-deep buffers under ping-pong must backpressure");
        let loose = SimConfig { network: NetworkConfig::default(), ..tight };
        let r2 = simulate(&g.cache, &g.directory, &loose).unwrap();
        assert_eq!(r2.backpressure_cycles, 0, "unbounded buffers never backpressure");
    }

    #[test]
    fn trace_replay_drives_the_engine() {
        let g = generate(&protogen_protocols::msi(), &GenConfig::non_stalling()).unwrap();
        let trace = "0 st 0\n1 ld 0\n0 st 1\n1 ld 1\n0 ev 0\n";
        let ops = parse_trace(trace).unwrap();
        let cfg = SimConfig {
            n_caches: 2,
            n_addrs: 2,
            workload: Workload::Trace(ops.clone()),
            ..SimConfig::default()
        };
        let r = simulate(&g.cache, &g.directory, &cfg).unwrap();
        assert_eq!(r.completed, ops.len());
    }
}
