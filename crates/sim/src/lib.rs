//! Discrete-event performance simulation of generated protocols.
//!
//! The ProtoGen paper motivates non-stalling protocols by performance:
//! stalling "will delay the start of the coherence permission epoch" and
//! "block incoming coherence messages" (§V-D2). This crate runs the
//! *generated* controllers — the same FSMs the model checker verified —
//! over a latency-modelled interconnect with synthetic sharing workloads,
//! so the stalling-vs-non-stalling comparison (experiment E10 in
//! DESIGN.md) is measured, not asserted.
//!
//! The system simulates one contended cache block (coherence is specified
//! and generated per block), N cores issuing accesses with a configurable
//! think time, per-`(src,dst)` ordered channels with a fixed hop latency,
//! and controllers that process at most one message per cycle. A stalled
//! message blocks its channel; other channels continue.
//!
//! # Example
//!
//! ```
//! use protogen_core::{generate, GenConfig};
//! use protogen_sim::{simulate, SimConfig};
//!
//! let g = generate(&protogen_protocols::msi(), &GenConfig::non_stalling()).unwrap();
//! let cfg = SimConfig { accesses_per_core: 50, ..SimConfig::default() };
//! let r = simulate(&g.cache, &g.directory, &cfg).unwrap();
//! assert_eq!(r.completed, 50 * cfg.n_caches);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use protogen_runtime::{
    apply, select_arc, CacheBlock, DirEntry, ExecError, MachineCtx, Msg, NodeId,
};
use protogen_spec::{Access, ArcKind, Event, Fsm};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Synthetic sharing patterns over the contended block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Every core reads and writes with the given store percentage —
    /// maximal racing, the situation §V-D2's transient states exist for.
    Mixed {
        /// Percentage of accesses that are stores (0–100).
        store_pct: u8,
    },
    /// Core 0 writes, every other core reads (producer/consumer).
    ProducerConsumer,
    /// Cores alternate reading and writing (migratory sharing).
    Migratory,
    /// Only core 0 touches the block (no contention baseline).
    Private,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of caches.
    pub n_caches: usize,
    /// Network latency in cycles for every hop.
    pub net_latency: u64,
    /// Cycles a core waits between completing one access and issuing the
    /// next.
    pub think_time: u64,
    /// Accesses each core performs.
    pub accesses_per_core: usize,
    /// The sharing pattern.
    pub workload: Workload,
    /// RNG seed (simulations are deterministic given a seed).
    pub seed: u64,
    /// Safety limit on simulated cycles.
    pub max_cycles: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_caches: 4,
            net_latency: 8,
            think_time: 2,
            accesses_per_core: 200,
            workload: Workload::Mixed { store_pct: 50 },
            seed: 0xC0FFEE,
            max_cycles: 50_000_000,
        }
    }
}

/// Aggregated measurements.
#[derive(Debug, Clone, Default)]
pub struct SimResult {
    /// Accesses completed (hits + transaction completions).
    pub completed: usize,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Mean cycles from issue to completion over *miss* transactions.
    pub avg_miss_latency: f64,
    /// Number of cycles any controller spent with a stalled message at a
    /// channel head (the paper's stalling cost).
    pub stall_cycles: u64,
    /// Coherence messages delivered.
    pub messages: u64,
}

struct Channel {
    queue: VecDeque<(u64, Msg)>, // (deliverable-at, message)
}

/// Runs the simulation.
///
/// # Errors
///
/// Returns an [`ExecError`] if the generated FSM misbehaves (which the
/// model checker rules out for verified protocols) or if `max_cycles`
/// elapses without completing the workload.
pub fn simulate(cache_fsm: &Fsm, dir_fsm: &Fsm, cfg: &SimConfig) -> Result<SimResult, ExecError> {
    let n = cfg.n_caches;
    let dir_id = NodeId(n as u8);
    let total = n + 1;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut caches: Vec<CacheBlock> = vec![CacheBlock::new(); n];
    let mut dir = DirEntry::new(0);
    let mut chans: Vec<Vec<Channel>> = (0..total)
        .map(|_| (0..total).map(|_| Channel { queue: VecDeque::new() }).collect())
        .collect();

    let mut remaining: Vec<usize> = vec![cfg.accesses_per_core; n];
    if cfg.workload == Workload::Private {
        for r in remaining.iter_mut().skip(1) {
            *r = 0;
        }
    }
    let mut next_issue: Vec<u64> = vec![0; n];
    let mut issue_time: Vec<Option<u64>> = vec![None; n];
    let mut result = SimResult::default();
    let mut miss_latency_sum: u64 = 0;
    let mut misses: usize = 0;

    let mut t: u64 = 0;
    while remaining.iter().any(|&r| r > 0)
        || caches.iter().any(|c| c.pending.is_some())
        || chans.iter().flatten().any(|c| !c.queue.is_empty())
    {
        if t > cfg.max_cycles {
            return Err(ExecError::MissingMsg(format!(
                "simulation exceeded {} cycles (livelock?)",
                cfg.max_cycles
            )));
        }

        // 1. Deliver at most one ripe message per destination.
        for dst in 0..total {
            let mut delivered = false;
            let mut stalled_here = false;
            for src in 0..total {
                if delivered {
                    break;
                }
                let Some(&(ready, msg)) = chans[src][dst].queue.front() else { continue };
                if ready > t {
                    continue;
                }
                let arc = if dst == n {
                    select_arc(
                        dir_fsm,
                        dir.state,
                        Event::Msg(msg.mtype),
                        Some(&msg),
                        None,
                        Some(&dir),
                    )
                } else {
                    select_arc(
                        cache_fsm,
                        caches[dst].state,
                        Event::Msg(msg.mtype),
                        Some(&msg),
                        Some(&caches[dst]),
                        None,
                    )
                };
                let Some(arc) = arc else {
                    return Err(ExecError::MissingMsg(format!(
                        "unexpected {msg} at node {dst} (protocol incomplete)"
                    )));
                };
                if arc.kind == ArcKind::Stall {
                    stalled_here = true;
                    continue; // blocks this channel; try other sources
                }
                chans[src][dst].queue.pop_front();
                let outcome = if dst == n {
                    apply(
                        dir_fsm,
                        arc,
                        Some(&msg),
                        MachineCtx::Dir { entry: &mut dir, self_id: dir_id },
                        0,
                    )?
                } else {
                    apply(
                        cache_fsm,
                        arc,
                        Some(&msg),
                        MachineCtx::Cache {
                            block: &mut caches[dst],
                            self_id: NodeId(dst as u8),
                            dir_id,
                        },
                        0,
                    )?
                };
                result.messages += 1;
                delivered = true;
                if outcome.performed.is_some() {
                    if let Some(start) = issue_time[dst].take() {
                        miss_latency_sum += t - start;
                        misses += 1;
                        result.completed += 1;
                        next_issue[dst] = t + cfg.think_time;
                    }
                }
                for m in outcome.outgoing {
                    chans[m.src.as_usize()][m.dst.as_usize()]
                        .queue
                        .push_back((t + cfg.net_latency, m));
                }
            }
            if stalled_here && !delivered {
                result.stall_cycles += 1;
            }
        }

        // 2. Cores issue accesses.
        for c in 0..n {
            if remaining[c] == 0 || caches[c].pending.is_some() || next_issue[c] > t {
                continue;
            }
            let access =
                pick_access(cfg.workload, c, &mut rng, cfg.accesses_per_core - remaining[c]);
            let arc = select_arc(
                cache_fsm,
                caches[c].state,
                Event::Access(access),
                None,
                Some(&caches[c]),
                None,
            );
            let Some(arc) = arc else {
                // The SSP defines no behaviour (replacement of an invalid
                // block): trivially complete.
                remaining[c] -= 1;
                result.completed += 1;
                next_issue[c] = t + cfg.think_time;
                continue;
            };
            if arc.kind == ArcKind::Stall {
                continue; // retry next cycle
            }
            let outcome = apply(
                cache_fsm,
                arc,
                None,
                MachineCtx::Cache { block: &mut caches[c], self_id: NodeId(c as u8), dir_id },
                0,
            )?;
            remaining[c] -= 1;
            if outcome.performed.is_some() {
                result.completed += 1; // hit
                next_issue[c] = t + cfg.think_time;
            } else {
                issue_time[c] = Some(t); // miss: a transaction is in flight
            }
            for m in outcome.outgoing {
                chans[m.src.as_usize()][m.dst.as_usize()].queue.push_back((t + cfg.net_latency, m));
            }
        }

        t += 1;
    }

    result.cycles = t;
    result.avg_miss_latency =
        if misses > 0 { miss_latency_sum as f64 / misses as f64 } else { 0.0 };
    Ok(result)
}

fn pick_access(w: Workload, core: usize, rng: &mut StdRng, step: usize) -> Access {
    match w {
        Workload::Mixed { store_pct } => {
            if rng.gen_range(0..100u8) < store_pct {
                Access::Store
            } else {
                Access::Load
            }
        }
        Workload::ProducerConsumer => {
            if core == 0 {
                Access::Store
            } else {
                Access::Load
            }
        }
        Workload::Migratory => {
            if step.is_multiple_of(2) {
                Access::Load
            } else {
                Access::Store
            }
        }
        Workload::Private => {
            if step.is_multiple_of(4) {
                Access::Store
            } else {
                Access::Load
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protogen_core::{generate, GenConfig};

    fn run(cfg_gen: GenConfig, workload: Workload) -> SimResult {
        let g = generate(&protogen_protocols::msi(), &cfg_gen).unwrap();
        let cfg = SimConfig { accesses_per_core: 100, workload, ..SimConfig::default() };
        simulate(&g.cache, &g.directory, &cfg).unwrap()
    }

    #[test]
    fn workload_completes_all_accesses() {
        let r = run(GenConfig::non_stalling(), Workload::Mixed { store_pct: 50 });
        assert_eq!(r.completed, 4 * 100);
        assert!(r.cycles > 0);
        assert!(r.messages > 0);
    }

    #[test]
    fn nonstalling_never_loses_to_stalling_under_contention() {
        // The paper's performance claim (E10): under racing transactions
        // the non-stalling protocol finishes no later and stalls less.
        let st = run(GenConfig::stalling(), Workload::Mixed { store_pct: 50 });
        let ns = run(GenConfig::non_stalling(), Workload::Mixed { store_pct: 50 });
        assert!(
            ns.cycles <= st.cycles,
            "non-stalling {} cycles vs stalling {}",
            ns.cycles,
            st.cycles
        );
        assert!(ns.stall_cycles <= st.stall_cycles);
    }

    #[test]
    fn private_workload_has_no_contention_gap() {
        let st = run(GenConfig::stalling(), Workload::Private);
        let ns = run(GenConfig::non_stalling(), Workload::Private);
        // Without racing transactions the two protocols behave identically.
        assert_eq!(st.cycles, ns.cycles);
        assert_eq!(st.stall_cycles, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(GenConfig::non_stalling(), Workload::Migratory);
        let b = run(GenConfig::non_stalling(), Workload::Migratory);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn all_protocols_simulate_cleanly() {
        for ssp in protogen_protocols::all() {
            for gc in [GenConfig::stalling(), GenConfig::non_stalling()] {
                let g = generate(&ssp, &gc).unwrap();
                let cfg = SimConfig { accesses_per_core: 40, n_caches: 3, ..SimConfig::default() };
                let r = simulate(&g.cache, &g.directory, &cfg)
                    .unwrap_or_else(|e| panic!("{} ({:?}): {e}", ssp.name, gc.concurrency));
                assert_eq!(r.completed, 3 * 40, "{}", ssp.name);
            }
        }
    }
}
