//! Workload layer: synthetic sharing-pattern generators and replayable
//! text traces.
//!
//! A workload expands to one operation schedule per core
//! ([`Workload::schedules`]); the engine consumes the schedules in order,
//! one outstanding access per core. Expansion is a pure function of
//! `(workload, n_caches, n_addrs, accesses_per_core, rng)`, so a fixed
//! seed replays the exact same traffic — the determinism the CI smoke job
//! asserts.

use crate::SimError;
use protogen_spec::Access;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// One operation of a core's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// The block accessed.
    pub addr: u32,
    /// The access performed.
    pub access: Access,
}

/// One line of a parsed `.trc` trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// The issuing core.
    pub core: u32,
    /// The block accessed.
    pub addr: u32,
    /// The access performed.
    pub access: Access,
}

/// Synthetic sharing patterns and trace replay over the simulated blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// Every core picks a uniformly random block and stores with the given
    /// percentage — maximal racing, the situation §V-D2's transient states
    /// exist for.
    Uniform {
        /// Percentage of accesses that are stores (0–100).
        store_pct: u8,
    },
    /// Zipf-distributed block popularity (weight `1/(rank+1)`): a hot set
    /// of contended blocks plus a long cold tail.
    Zipfian {
        /// Percentage of accesses that are stores (0–100).
        store_pct: u8,
    },
    /// Core 0 stores block 0; every other core loads it
    /// (producer/consumer sharing).
    ProducerConsumer,
    /// All cores alternate load/store on block 0, so ownership migrates
    /// core to core.
    Migratory,
    /// All cores store block 0 on every access — the write ping-pong that
    /// false sharing degenerates to.
    FalseSharing,
    /// Each core touches only its own block (`core % n_addrs`): the
    /// contention-free baseline. Loads with a store at every fourth
    /// access starting from the third, so the first miss is a read miss
    /// (this is what makes MESI's exclusive-clean state observable).
    Private,
    /// Replay of a parsed `.trc` trace (see [`parse_trace`]).
    Trace(Vec<TraceOp>),
}

impl Workload {
    /// The synthetic generators, for sweeps (traces are file-driven).
    pub fn synthetic() -> Vec<Workload> {
        vec![
            Workload::Uniform { store_pct: 50 },
            Workload::Zipfian { store_pct: 50 },
            Workload::ProducerConsumer,
            Workload::Migratory,
            Workload::FalseSharing,
            Workload::Private,
        ]
    }

    /// Parses a workload name as accepted by the CLI.
    pub fn parse(name: &str, store_pct: u8) -> Result<Workload, String> {
        Ok(match name {
            "uniform" => Workload::Uniform { store_pct },
            "zipfian" => Workload::Zipfian { store_pct },
            "producer-consumer" => Workload::ProducerConsumer,
            "migratory" => Workload::Migratory,
            "false-sharing" => Workload::FalseSharing,
            "private" => Workload::Private,
            _ => {
                return Err(format!(
                    "unknown workload `{name}` (try uniform, zipfian, producer-consumer, \
                     migratory, false-sharing, private)"
                ))
            }
        })
    }

    /// A short stable label for config-cell naming and JSON.
    pub fn label(&self) -> String {
        match self {
            Workload::Uniform { store_pct } => format!("uniform-{store_pct}"),
            Workload::Zipfian { store_pct } => format!("zipfian-{store_pct}"),
            Workload::ProducerConsumer => "producer-consumer".into(),
            Workload::Migratory => "migratory".into(),
            Workload::FalseSharing => "false-sharing".into(),
            Workload::Private => "private".into(),
            Workload::Trace(ops) => format!("trace-{}ops", ops.len()),
        }
    }

    /// Expands the workload into one schedule per core. Every emitted op
    /// satisfies `addr < n_addrs`, and trace cores must satisfy
    /// `core < n_caches`.
    ///
    /// # Errors
    ///
    /// [`SimError::Workload`] when a trace references a core or address
    /// outside the configured system.
    pub fn schedules(
        &self,
        n_caches: usize,
        n_addrs: usize,
        accesses_per_core: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<Vec<Op>>, SimError> {
        if n_caches == 0 || n_addrs == 0 {
            return Err(SimError::Workload("need at least one cache and one address".into()));
        }
        if let Workload::Trace(ops) = self {
            let mut per_core: Vec<Vec<Op>> = vec![Vec::new(); n_caches];
            for (i, t) in ops.iter().enumerate() {
                if t.core as usize >= n_caches {
                    return Err(SimError::Workload(format!(
                        "trace op {i}: core {} out of range (n_caches = {n_caches})",
                        t.core
                    )));
                }
                if t.addr as usize >= n_addrs {
                    return Err(SimError::Workload(format!(
                        "trace op {i}: address {} out of range (n_addrs = {n_addrs})",
                        t.addr
                    )));
                }
                per_core[t.core as usize].push(Op { addr: t.addr, access: t.access });
            }
            return Ok(per_core);
        }

        let zipf = ZipfTable::new(n_addrs);
        let mut per_core = Vec::with_capacity(n_caches);
        for core in 0..n_caches {
            let mut ops = Vec::with_capacity(accesses_per_core);
            for step in 0..accesses_per_core {
                ops.push(self.synth_op(core, step, n_addrs, &zipf, rng));
            }
            per_core.push(ops);
        }
        Ok(per_core)
    }

    fn synth_op(
        &self,
        core: usize,
        step: usize,
        n_addrs: usize,
        zipf: &ZipfTable,
        rng: &mut StdRng,
    ) -> Op {
        match *self {
            Workload::Uniform { store_pct } => {
                Op { addr: rng.gen_range(0..n_addrs as u32), access: pick_store(rng, store_pct) }
            }
            Workload::Zipfian { store_pct } => {
                Op { addr: zipf.sample(rng), access: pick_store(rng, store_pct) }
            }
            Workload::ProducerConsumer => {
                Op { addr: 0, access: if core == 0 { Access::Store } else { Access::Load } }
            }
            Workload::Migratory => Op {
                addr: 0,
                access: if step.is_multiple_of(2) { Access::Load } else { Access::Store },
            },
            Workload::FalseSharing => Op { addr: 0, access: Access::Store },
            Workload::Private => Op {
                addr: (core % n_addrs) as u32,
                access: if step % 4 == 2 { Access::Store } else { Access::Load },
            },
            Workload::Trace(_) => unreachable!("traces expand in schedules()"),
        }
    }
}

fn pick_store(rng: &mut StdRng, store_pct: u8) -> Access {
    if rng.gen_range(0..100u8) < store_pct {
        Access::Store
    } else {
        Access::Load
    }
}

/// Fixed-point cumulative Zipf weights (`w_rank = 1/(rank+1)`), sampled by
/// binary search — integer arithmetic only, so results are identical on
/// every platform.
struct ZipfTable {
    cumulative: Vec<u64>,
}

impl ZipfTable {
    const SCALE: u64 = 1_000_000;

    fn new(n_addrs: usize) -> ZipfTable {
        let mut cumulative = Vec::with_capacity(n_addrs);
        let mut total = 0u64;
        for rank in 0..n_addrs as u64 {
            total += ZipfTable::SCALE / (rank + 1);
            cumulative.push(total);
        }
        ZipfTable { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> u32 {
        let total = *self.cumulative.last().expect("non-empty table");
        let r = rng.gen_range(0..total);
        self.cumulative.partition_point(|&c| c <= r) as u32
    }
}

/// Parses the `.trc` text trace format: one op per line,
/// `<core> <ld|st|ev> <addr>`, with `#` comments and blank lines ignored.
///
/// ```text
/// # producer/consumer on block 0
/// 0 st 0
/// 1 ld 0
/// ```
///
/// # Errors
///
/// [`SimError::Workload`] with the offending line number on malformed
/// input.
pub fn parse_trace(src: &str) -> Result<Vec<TraceOp>, SimError> {
    let mut ops = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let mut field = |what: &str| {
            fields.next().ok_or_else(|| {
                SimError::Workload(format!("trace line {}: missing {what}", lineno + 1))
            })
        };
        let core = field("core")?;
        let op = field("op")?;
        let addr = field("address")?;
        let parse_u32 = |s: &str, what: &str| {
            s.parse::<u32>().map_err(|_| {
                SimError::Workload(format!("trace line {}: bad {what} `{s}`", lineno + 1))
            })
        };
        let access = match op {
            "ld" => Access::Load,
            "st" => Access::Store,
            "ev" => Access::Replacement,
            other => {
                return Err(SimError::Workload(format!(
                    "trace line {}: bad op `{other}` (ld, st, or ev)",
                    lineno + 1
                )))
            }
        };
        if fields.next().is_some() {
            return Err(SimError::Workload(format!(
                "trace line {}: trailing fields after address",
                lineno + 1
            )));
        }
        ops.push(TraceOp {
            core: parse_u32(core, "core")?,
            addr: parse_u32(addr, "address")?,
            access,
        });
    }
    Ok(ops)
}

/// Renders ops back to the `.trc` text format ([`parse_trace`]'s inverse),
/// so captured traces are diffable run to run.
pub fn render_trace(ops: &[TraceOp]) -> String {
    let mut out = String::new();
    for t in ops {
        let op = match t.access {
            Access::Load => "ld",
            Access::Store => "st",
            Access::Replacement => "ev",
        };
        out.push_str(&format!("{} {} {}\n", t.core, op, t.addr));
    }
    out
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn schedules_are_deterministic_and_bounded() {
        for w in Workload::synthetic() {
            let mut a = StdRng::seed_from_u64(9);
            let mut b = StdRng::seed_from_u64(9);
            let sa = w.schedules(3, 5, 40, &mut a).unwrap();
            let sb = w.schedules(3, 5, 40, &mut b).unwrap();
            assert_eq!(sa, sb, "{w}");
            assert_eq!(sa.len(), 3);
            for ops in &sa {
                assert_eq!(ops.len(), 40);
                for op in ops {
                    assert!((op.addr as usize) < 5, "{w}: addr {}", op.addr);
                }
            }
        }
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = ZipfTable::new(8);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[3] && counts[3] > counts[7], "{counts:?}");
    }

    #[test]
    fn trace_round_trips_through_text() {
        let src = "# header\n0 st 0\n1 ld 0  # inline comment\n\n2 ev 3\n";
        let ops = parse_trace(src).unwrap();
        assert_eq!(
            ops,
            vec![
                TraceOp { core: 0, addr: 0, access: Access::Store },
                TraceOp { core: 1, addr: 0, access: Access::Load },
                TraceOp { core: 2, addr: 3, access: Access::Replacement },
            ]
        );
        assert_eq!(parse_trace(&render_trace(&ops)).unwrap(), ops);
    }

    #[test]
    fn trace_errors_name_the_line() {
        for (src, needle) in [
            ("0 st", "line 1: missing address"),
            ("0 mv 1", "bad op `mv`"),
            ("x st 1", "bad core"),
            ("0 st 1 9", "trailing fields"),
        ] {
            let err = parse_trace(src).unwrap_err().to_string();
            assert!(err.contains(needle), "{err}");
        }
    }

    #[test]
    fn trace_schedules_validate_bounds() {
        let ops = vec![TraceOp { core: 5, addr: 0, access: Access::Load }];
        let mut rng = StdRng::seed_from_u64(0);
        let err = Workload::Trace(ops).schedules(2, 4, 10, &mut rng).unwrap_err();
        assert!(err.to_string().contains("core 5 out of range"), "{err}");
    }
}
