//! Simulation parameters: interconnect models and run configuration.

use crate::workload::Workload;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// Per-hop latency distribution of an interconnect link.
///
/// Sampling is seed-deterministic: a given [`crate::SimConfig::seed`]
/// always produces the same latencies, so runs are reproducible and
/// diffable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyDist {
    /// Every hop takes exactly this many cycles.
    Fixed(u64),
    /// Uniformly distributed in `[lo, hi]` cycles.
    Uniform {
        /// Minimum hop latency.
        lo: u64,
        /// Maximum hop latency (inclusive).
        hi: u64,
    },
    /// `base` cycles plus a geometrically distributed number of extra
    /// cycles: after the base, each additional cycle occurs with
    /// probability `extra_pct`/100 (models contention tails).
    Geometric {
        /// Deterministic part of the hop latency.
        base: u64,
        /// Percent chance (0–99) of each further +1-cycle extension.
        extra_pct: u8,
    },
}

impl LatencyDist {
    /// Samples one hop latency.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            LatencyDist::Fixed(n) => n,
            LatencyDist::Uniform { lo, hi } => {
                if lo >= hi {
                    lo
                } else {
                    rng.gen_range(lo..=hi)
                }
            }
            LatencyDist::Geometric { base, extra_pct } => {
                let p = u64::from(extra_pct.min(99));
                let mut extra = 0;
                // Bounded so a pathological configuration cannot spin.
                while extra < 64 && rng.gen_range(0..100u64) < p {
                    extra += 1;
                }
                base + extra
            }
        }
    }

    /// Parses `fixed:N`, `uniform:LO:HI`, or `geometric:BASE:PCT`.
    pub fn parse(s: &str) -> Result<LatencyDist, String> {
        let mut parts = s.split(':');
        let kind = parts.next().unwrap_or_default();
        let mut num = |what: &str| -> Result<u64, String> {
            parts
                .next()
                .ok_or_else(|| format!("latency `{s}`: missing {what}"))?
                .parse()
                .map_err(|_| format!("latency `{s}`: bad {what}"))
        };
        let dist = match kind {
            "fixed" => LatencyDist::Fixed(num("cycle count")?),
            "uniform" => LatencyDist::Uniform { lo: num("lo")?, hi: num("hi")? },
            "geometric" => LatencyDist::Geometric {
                base: num("base")?,
                extra_pct: num("extra-pct")?.min(99) as u8,
            },
            _ => return Err(format!("latency `{s}`: expected fixed:/uniform:/geometric:")),
        };
        if let LatencyDist::Uniform { lo, hi } = dist {
            if lo > hi {
                return Err(format!("latency `{s}`: lo > hi"));
            }
        }
        Ok(dist)
    }
}

impl fmt::Display for LatencyDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LatencyDist::Fixed(n) => write!(f, "fixed:{n}"),
            LatencyDist::Uniform { lo, hi } => write!(f, "uniform:{lo}:{hi}"),
            LatencyDist::Geometric { base, extra_pct } => write!(f, "geometric:{base}:{extra_pct}"),
        }
    }
}

/// Message-delivery discipline of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetModel {
    /// Point-to-point ordered: each `(src, dst)` channel delivers a
    /// block's messages in send order (the network model the paper's
    /// ordered protocols assume). Latency jitter never reorders.
    Ordered,
    /// Unordered: any ripe message in a channel may be delivered, so
    /// variable latency reorders messages (requires a protocol generated
    /// for unordered networks, e.g. `msi-unordered`).
    Unordered,
}

impl fmt::Display for NetModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NetModel::Ordered => "ordered",
            NetModel::Unordered => "unordered",
        })
    }
}

/// Interconnect configuration: delivery discipline, latency distribution,
/// and buffering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkConfig {
    /// Delivery discipline.
    pub model: NetModel,
    /// Per-hop latency distribution.
    pub latency: LatencyDist,
    /// Bounded-buffer capacity per `(src, dst)` channel; `0` means
    /// unbounded. A full channel exerts backpressure: the event whose
    /// sends would overflow is deferred and retried next cycle.
    pub capacity: usize,
}

impl NetworkConfig {
    /// An ordered network with fixed hop latency and unbounded buffers.
    pub fn ordered(latency: u64) -> Self {
        NetworkConfig {
            model: NetModel::Ordered,
            latency: LatencyDist::Fixed(latency),
            capacity: 0,
        }
    }

    /// An unordered network with the given latency distribution and
    /// unbounded buffers.
    pub fn unordered(latency: LatencyDist) -> Self {
        NetworkConfig { model: NetModel::Unordered, latency, capacity: 0 }
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::ordered(8)
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of caches.
    pub n_caches: usize,
    /// Number of distinct cache blocks (addresses) in play. Coherence is
    /// tracked per block: each address has its own directory entry and
    /// per-cache block state.
    pub n_addrs: usize,
    /// Cycles a core waits between completing one access and issuing the
    /// next.
    pub think_time: u64,
    /// Accesses each core performs.
    pub accesses_per_core: usize,
    /// The sharing pattern.
    pub workload: Workload,
    /// The interconnect model.
    pub network: NetworkConfig,
    /// RNG seed (simulations are deterministic given a seed).
    pub seed: u64,
    /// Safety limit on simulated cycles.
    pub max_cycles: u64,
    /// Record every `(machine, state, event)` dispatch into
    /// [`crate::SimResult::coverage`] (conformance testing against the
    /// model checker; off by default).
    pub collect_coverage: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_caches: 4,
            n_addrs: 4,
            think_time: 2,
            accesses_per_core: 200,
            workload: Workload::Uniform { store_pct: 50 },
            network: NetworkConfig::default(),
            seed: 0xC0FFEE,
            max_cycles: 50_000_000,
            collect_coverage: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn latency_parse_round_trips_display() {
        for s in ["fixed:8", "uniform:4:16", "geometric:6:25"] {
            let d = LatencyDist::parse(s).unwrap();
            assert_eq!(d.to_string(), s);
        }
        assert!(LatencyDist::parse("uniform:9:3").is_err());
        assert!(LatencyDist::parse("gaussian:1").is_err());
        assert!(LatencyDist::parse("fixed:").is_err());
    }

    #[test]
    fn samples_respect_bounds_and_determinism() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for dist in [
            LatencyDist::Fixed(5),
            LatencyDist::Uniform { lo: 2, hi: 9 },
            LatencyDist::Geometric { base: 3, extra_pct: 50 },
        ] {
            for _ in 0..200 {
                let x = dist.sample(&mut a);
                assert_eq!(x, dist.sample(&mut b));
                match dist {
                    LatencyDist::Fixed(n) => assert_eq!(x, n),
                    LatencyDist::Uniform { lo, hi } => assert!((lo..=hi).contains(&x)),
                    LatencyDist::Geometric { base, .. } => assert!(x >= base && x <= base + 64),
                }
            }
        }
    }
}
