//! Interconnect models: timed per-`(src, dst)` channels with ordered or
//! unordered delivery, latency distributions, and bounded buffers.

use crate::config::{NetModel, NetworkConfig};
use rand::rngs::StdRng;
use std::collections::VecDeque;

/// A coherence message tagged with the block it concerns. The runtime's
/// [`protogen_runtime::Msg`] is per-block (coherence is specified per
/// block, §IV-A); the network carries many blocks' traffic over shared
/// channels.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SimMsg {
    /// The block the message belongs to.
    pub addr: u32,
    /// The message itself.
    pub msg: protogen_runtime::Msg,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    ready: u64,
    msg: SimMsg,
}

/// The simulated interconnect: one timed queue per `(src, dst)` pair.
///
/// * **Ordered** — delivery commits in send order per `(src, dst, block)`:
///   sampled latencies are made monotone within a channel, and the
///   deliverable candidates are each block's oldest queued message. A
///   stalled candidate blocks only its own block's traffic, not other
///   blocks sharing the channel (separate virtual channels per block, the
///   standard head-of-line-blocking fix).
/// * **Unordered** — every ripe message is a candidate, so latency jitter
///   reorders delivery arbitrarily.
#[derive(Debug)]
pub(crate) struct Network {
    cfg: NetworkConfig,
    chans: Vec<Vec<VecDeque<Entry>>>,
    /// Scratch for the ordered candidate scan (reused across calls; the
    /// engine scans every channel every cycle, so this is a hot path).
    seen_addrs: Vec<u32>,
    /// Deepest any channel ever grew.
    pub peak_depth: usize,
}

impl Network {
    pub fn new(n_nodes: usize, cfg: NetworkConfig) -> Network {
        Network {
            cfg,
            chans: (0..n_nodes).map(|_| (0..n_nodes).map(|_| VecDeque::new()).collect()).collect(),
            seen_addrs: Vec::new(),
            peak_depth: 0,
        }
    }

    /// Whether every message of `outgoing` fits its channel's bounded
    /// buffer (always true with unbounded buffers).
    pub fn accepts(&self, outgoing: &[protogen_runtime::Msg]) -> bool {
        if self.cfg.capacity == 0 {
            return true;
        }
        for (i, m) in outgoing.iter().enumerate() {
            let same_channel_before =
                outgoing[..i].iter().filter(|p| p.src == m.src && p.dst == m.dst).count();
            let q = &self.chans[m.src.as_usize()][m.dst.as_usize()];
            if q.len() + same_channel_before + 1 > self.cfg.capacity {
                return false;
            }
        }
        true
    }

    /// Enqueues one message at time `now`, sampling its delivery latency.
    pub fn send(&mut self, now: u64, sm: SimMsg, rng: &mut StdRng) {
        let mut ready = now + self.cfg.latency.sample(rng).max(1);
        let q = &mut self.chans[sm.msg.src.as_usize()][sm.msg.dst.as_usize()];
        if self.cfg.model == NetModel::Ordered {
            // FIFO commit order: jitter may widen gaps, never reorder.
            if let Some(back) = q.back() {
                ready = ready.max(back.ready);
            }
        }
        q.push_back(Entry { ready, msg: sm });
        self.peak_depth = self.peak_depth.max(q.len());
    }

    /// Collects the queue indices deliverable from `src` to `dst` at time
    /// `now` into `buf`, in queue (send) order.
    pub fn candidates(&mut self, src: usize, dst: usize, now: u64, buf: &mut Vec<usize>) {
        buf.clear();
        let q = &self.chans[src][dst];
        match self.cfg.model {
            NetModel::Unordered => {
                buf.extend((0..q.len()).filter(|&i| q[i].ready <= now));
            }
            NetModel::Ordered => {
                // The oldest queued message of each block is that block's
                // head; younger same-block messages wait behind it.
                self.seen_addrs.clear();
                for (i, e) in q.iter().enumerate() {
                    if self.seen_addrs.contains(&e.msg.addr) {
                        continue;
                    }
                    self.seen_addrs.push(e.msg.addr);
                    if e.ready <= now {
                        buf.push(i);
                    }
                }
            }
        }
    }

    /// The message at queue position `idx` of channel `src → dst`.
    pub fn peek(&self, src: usize, dst: usize, idx: usize) -> SimMsg {
        self.chans[src][dst][idx].msg
    }

    /// Removes and returns the message at queue position `idx`.
    pub fn take(&mut self, src: usize, dst: usize, idx: usize) -> SimMsg {
        self.chans[src][dst].remove(idx).expect("valid candidate index").msg
    }

    /// Whether no message is in flight anywhere.
    pub fn is_empty(&self) -> bool {
        self.chans.iter().flatten().all(VecDeque::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LatencyDist;
    use protogen_runtime::{Msg, NodeId};
    use protogen_spec::MsgId;
    use rand::SeedableRng;

    fn msg(src: u8, dst: u8) -> Msg {
        Msg {
            mtype: MsgId(0),
            src: NodeId(src),
            dst: NodeId(dst),
            req: NodeId(src),
            ack_count: None,
            data: None,
        }
    }

    #[test]
    fn ordered_channel_never_reorders_despite_jitter() {
        let cfg = NetworkConfig {
            model: NetModel::Ordered,
            latency: LatencyDist::Uniform { lo: 1, hi: 30 },
            capacity: 0,
        };
        let mut net = Network::new(2, cfg);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            net.send(0, SimMsg { addr: 0, msg: msg(0, 1) }, &mut rng);
        }
        // At any instant the single candidate is the queue head.
        let mut buf = Vec::new();
        for now in 0..100 {
            net.candidates(0, 1, now, &mut buf);
            assert!(buf.len() <= 1, "t={now}: {buf:?}");
            if buf.first() == Some(&0) {
                net.take(0, 1, 0);
            }
        }
        assert!(net.is_empty());
    }

    #[test]
    fn ordered_blocks_are_independent_candidate_classes() {
        let mut net = Network::new(2, NetworkConfig::ordered(1));
        let mut rng = StdRng::seed_from_u64(0);
        net.send(0, SimMsg { addr: 7, msg: msg(0, 1) }, &mut rng);
        net.send(0, SimMsg { addr: 7, msg: msg(0, 1) }, &mut rng);
        net.send(0, SimMsg { addr: 3, msg: msg(0, 1) }, &mut rng);
        let mut buf = Vec::new();
        net.candidates(0, 1, 10, &mut buf);
        // Head of block 7 and head of block 3 — not the second block-7 msg.
        assert_eq!(buf, vec![0, 2]);
    }

    #[test]
    fn unordered_jitter_exposes_ripe_messages_out_of_order() {
        let cfg = NetworkConfig {
            model: NetModel::Unordered,
            latency: LatencyDist::Uniform { lo: 1, hi: 50 },
            capacity: 0,
        };
        let mut net = Network::new(2, cfg);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            net.send(0, SimMsg { addr: 0, msg: msg(0, 1) }, &mut rng);
        }
        let mut buf = Vec::new();
        let mut saw_non_head = false;
        for now in 0..60 {
            net.candidates(0, 1, now, &mut buf);
            if buf.first().is_some_and(|&i| i != 0) {
                saw_non_head = true;
            }
            if let Some(&i) = buf.first() {
                net.take(0, 1, i);
            }
        }
        assert!(saw_non_head, "jitter should make a non-head message ripe first");
    }

    #[test]
    fn bounded_buffers_reject_overflowing_sends() {
        let cfg =
            NetworkConfig { model: NetModel::Ordered, latency: LatencyDist::Fixed(1), capacity: 2 };
        let mut net = Network::new(2, cfg);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(net.accepts(&[msg(0, 1), msg(0, 1)]));
        assert!(!net.accepts(&[msg(0, 1), msg(0, 1), msg(0, 1)]));
        net.send(0, SimMsg { addr: 0, msg: msg(0, 1) }, &mut rng);
        assert!(net.accepts(&[msg(0, 1)]));
        assert!(!net.accepts(&[msg(0, 1), msg(0, 1)]));
        assert_eq!(net.peak_depth, 1);
    }
}
