//! Measurement: latency histograms, aggregated run statistics, and a
//! deterministic JSON writer.
//!
//! JSON rendering is byte-deterministic — object keys are emitted in
//! insertion order and floats with a fixed precision — so two runs with
//! the same seed produce identical files at any thread count, which is
//! what lets CI `diff` sweep artifacts run to run.

use protogen_runtime::PairSet;
use std::fmt;

/// An exact latency histogram: every sample is retained, percentiles are
/// computed over the sorted sample set. Simulated transaction counts are
/// small enough (thousands) that exactness beats bucketing.
///
/// Percentile reads take `&self`: the sorted view is built once, on the
/// first read after the last [`Histogram::record`], and shared by every
/// subsequent read (amortized sorting without leaking `&mut` into
/// read-only stats consumers).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: std::sync::OnceLock<Vec<u64>>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.samples.push(v);
        self.sorted.take(); // invalidate the finalized view
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sorted sample view, built on first use after the last record.
    fn sorted(&self) -> &[u64] {
        self.sorted.get_or_init(|| {
            let mut v = self.samples.clone();
            v.sort_unstable();
            v
        })
    }

    /// The `p`-th percentile (nearest-rank), or 0 with no samples.
    pub fn percentile(&self, p: f64) -> u64 {
        let sorted = self.sorted();
        if sorted.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Arithmetic mean, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
        }
    }

    /// Largest sample, or 0 with no samples.
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }
}

/// Aggregated measurements of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimResult {
    /// Accesses completed (hits + transaction completions).
    pub completed: usize,
    /// Accesses satisfied without a coherence transaction.
    pub hits: usize,
    /// Accesses that launched a coherence transaction.
    pub misses: usize,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Node-cycles spent with a stalled message at a channel head (the
    /// paper's stalling cost).
    pub stall_cycles: u64,
    /// Node-cycles spent blocked on a full outgoing channel
    /// (bounded-buffer backpressure).
    pub backpressure_cycles: u64,
    /// Coherence messages delivered.
    pub messages: u64,
    /// Deepest any `(src, dst)` channel ever grew.
    pub peak_channel_depth: usize,
    /// Mean cycles from issue to completion over miss transactions.
    pub avg_miss_latency: f64,
    /// Median miss latency.
    pub p50_latency: u64,
    /// 95th-percentile miss latency.
    pub p95_latency: u64,
    /// 99th-percentile miss latency.
    pub p99_latency: u64,
    /// Worst-case miss latency.
    pub max_latency: u64,
    /// Messages delivered per miss transaction.
    pub msgs_per_miss: f64,
    /// Fraction of directory-entry cycles spent in a transient (busy)
    /// state — how occupied the directory was mid-transaction.
    pub dir_occupancy: f64,
    /// Observed `(machine, state, event)` dispatches, when
    /// [`crate::SimConfig::collect_coverage`] was set. Not serialized.
    pub coverage: Option<PairSet>,
}

impl SimResult {
    /// The run's measurements as an ordered JSON object (coverage is
    /// bookkeeping for conformance tests and is not serialized).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("completed", Json::U64(self.completed as u64)),
            ("hits", Json::U64(self.hits as u64)),
            ("misses", Json::U64(self.misses as u64)),
            ("cycles", Json::U64(self.cycles)),
            ("stall_cycles", Json::U64(self.stall_cycles)),
            ("backpressure_cycles", Json::U64(self.backpressure_cycles)),
            ("messages", Json::U64(self.messages)),
            ("peak_channel_depth", Json::U64(self.peak_channel_depth as u64)),
            ("avg_miss_latency", Json::F64(self.avg_miss_latency)),
            ("p50_latency", Json::U64(self.p50_latency)),
            ("p95_latency", Json::U64(self.p95_latency)),
            ("p99_latency", Json::U64(self.p99_latency)),
            ("max_latency", Json::U64(self.max_latency)),
            ("msgs_per_miss", Json::F64(self.msgs_per_miss)),
            ("dir_occupancy", Json::F64(self.dir_occupancy)),
        ])
    }
}

/// A JSON value with deterministic rendering: objects keep insertion
/// order, floats print with fixed 4-decimal precision, output is
/// 2-space-indented with a trailing newline at the document root.
///
/// This is the serialization layer the whole workspace's JSON artifacts go
/// through (`BENCH_*.json`, sweep cells); the types stay `serde`-derive
/// ready for the day the real crates replace the `compat/` stand-ins.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, printed without a decimal point.
    U64(u64),
    /// A float, printed with fixed `{:.4}` precision.
    F64(f64),
    /// A string (escaped minimally: `"`, `\`, and control characters).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(entries: [(&str, Json); N]) -> Json {
        Json::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Appends a field to an object.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an [`Json::Obj`].
    pub fn push(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(entries) => entries.push((key.to_string(), value)),
            other => panic!("push on non-object JSON value {other:?}"),
        }
    }

    /// Renders the document with a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(v) => out.push_str(&format!("{v:.4}")),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    pad(out, indent + 1);
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), 50);
        assert_eq!(h.percentile(95.0), 100);
        assert_eq!(h.percentile(99.0), 100);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 55.0);
        assert_eq!(h.len(), 10);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn percentile_reads_take_shared_references() {
        let mut h = Histogram::new();
        for v in [30u64, 10, 20] {
            h.record(v);
        }
        // Two simultaneous &self borrows: the read path must not need &mut.
        let (r, s) = (&h, &h);
        assert_eq!(r.percentile(50.0), 20);
        assert_eq!(s.percentile(50.0), 20);
    }

    #[test]
    fn percentile_extremes_and_single_sample() {
        let mut h = Histogram::new();
        for v in [50u64, 10, 40, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 10, "p=0 is the minimum sample");
        assert_eq!(h.percentile(100.0), 50, "p=100 is the maximum sample");
        let mut single = Histogram::new();
        single.record(7);
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(single.percentile(p), 7, "single-sample p={p}");
        }
    }

    #[test]
    fn recording_after_a_read_invalidates_the_sorted_view() {
        let mut h = Histogram::new();
        h.record(10);
        assert_eq!(h.percentile(100.0), 10);
        h.record(99);
        assert_eq!(h.percentile(100.0), 99);
        assert_eq!(h.percentile(0.0), 10);
    }

    #[test]
    fn json_renders_deterministically() {
        let j = Json::obj([
            ("name", Json::Str("msi \"v1\"".into())),
            ("n", Json::U64(3)),
            ("ratio", Json::F64(1.0 / 3.0)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Bool(false)])),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = j.render();
        assert_eq!(text, j.render());
        assert!(text.contains("\"name\": \"msi \\\"v1\\\"\""), "{text}");
        assert!(text.contains("\"ratio\": 0.3333"), "{text}");
        assert!(text.contains("\"empty\": {}"), "{text}");
        assert!(text.ends_with("}\n"), "{text}");
    }

    #[test]
    #[should_panic(expected = "push on non-object")]
    fn push_rejects_non_objects() {
        Json::U64(1).push("k", Json::U64(2));
    }
}
