//! The discrete-event simulation engine.
//!
//! Runs the *generated* controllers — the same FSMs the model checker
//! verified, executed through the same `protogen-runtime` semantics — over
//! a latency-modelled interconnect with a workload schedule per core. Each
//! cycle every node delivers at most one message and every idle core may
//! issue its next scheduled access; a stalled message blocks its block's
//! channel lane, a full bounded buffer defers the event that would
//! overflow it (backpressure).

use crate::config::SimConfig;
use crate::network::{Network, SimMsg};
use crate::stats::{Histogram, SimResult};
use crate::workload::Op;
use crate::SimError;
use protogen_runtime::{
    apply, select_arc_indexed, CacheBlock, DirEntry, FsmIndex, MachineCtx, MachineTag, NodeId,
    PairSet,
};
use protogen_spec::{ArcKind, Event, Fsm};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs one simulation.
///
/// # Errors
///
/// * [`SimError::Workload`] — the workload references cores or addresses
///   outside the configured system;
/// * [`SimError::UnexpectedMessage`] — a controller received a message it
///   has no transition for (running a protocol on a network model it was
///   not generated for, e.g. an ordered-network protocol on an unordered
///   interconnect);
/// * [`SimError::Exec`] — the generated FSM misbehaved (a generator bug;
///   the model checker rules this out for verified protocols);
/// * [`SimError::Livelock`] — `max_cycles` elapsed without completing.
pub fn simulate(cache_fsm: &Fsm, dir_fsm: &Fsm, cfg: &SimConfig) -> Result<SimResult, SimError> {
    Engine::new(cache_fsm, dir_fsm, cfg)?.run()
}

struct Engine<'a> {
    cache_fsm: &'a Fsm,
    dir_fsm: &'a Fsm,
    cache_idx: FsmIndex,
    dir_idx: FsmIndex,
    cfg: &'a SimConfig,
    rng: StdRng,
    /// `caches[c][a]` — cache `c`'s state for block `a`.
    caches: Vec<Vec<CacheBlock>>,
    /// `dirs[a]` — the directory entry for block `a`.
    dirs: Vec<DirEntry>,
    net: Network,
    schedules: Vec<Vec<Op>>,
    cursor: Vec<usize>,
    /// Per-core outstanding transaction: `(block, issue cycle)`.
    in_flight: Vec<Option<(u32, u64)>>,
    next_issue: Vec<u64>,
    latencies: Histogram,
    result: SimResult,
    busy_dir_cycles: u64,
    coverage: Option<PairSet>,
    cand_buf: Vec<usize>,
}

impl<'a> Engine<'a> {
    fn new(cache_fsm: &'a Fsm, dir_fsm: &'a Fsm, cfg: &'a SimConfig) -> Result<Self, SimError> {
        let n = cfg.n_caches;
        if !(1..=8).contains(&n) {
            // The sharer list is a u8 bitmask throughout the workspace.
            return Err(SimError::Workload(format!("n_caches must be 1..=8, got {n}")));
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let schedules = cfg.workload.schedules(n, cfg.n_addrs, cfg.accesses_per_core, &mut rng)?;
        Ok(Engine {
            cache_fsm,
            dir_fsm,
            cache_idx: FsmIndex::new(cache_fsm),
            dir_idx: FsmIndex::new(dir_fsm),
            cfg,
            rng,
            caches: vec![vec![CacheBlock::new(); cfg.n_addrs]; n],
            dirs: vec![DirEntry::new(0); cfg.n_addrs],
            net: Network::new(n + 1, cfg.network),
            cursor: vec![0; schedules.len()],
            schedules,
            in_flight: vec![None; n],
            next_issue: vec![0; n],
            latencies: Histogram::new(),
            result: SimResult::default(),
            busy_dir_cycles: 0,
            coverage: cfg.collect_coverage.then(PairSet::new),
            cand_buf: Vec::new(),
        })
    }

    fn dir_node(&self) -> usize {
        self.cfg.n_caches
    }

    fn run(mut self) -> Result<SimResult, SimError> {
        let mut t: u64 = 0;
        loop {
            let idle_cores = (0..self.cfg.n_caches)
                .all(|c| self.cursor[c] >= self.schedules[c].len() && self.in_flight[c].is_none());
            if idle_cores && self.net.is_empty() {
                break;
            }
            if t > self.cfg.max_cycles {
                return Err(SimError::Livelock { cycles: self.cfg.max_cycles });
            }
            self.deliver_phase(t)?;
            self.issue_phase(t)?;
            self.busy_dir_cycles +=
                self.dirs.iter().filter(|d| !self.dir_fsm.state(d.state).is_stable()).count()
                    as u64;
            t += 1;
        }
        self.result.cycles = t;
        self.result.avg_miss_latency = self.latencies.mean();
        self.result.p50_latency = self.latencies.percentile(50.0);
        self.result.p95_latency = self.latencies.percentile(95.0);
        self.result.p99_latency = self.latencies.percentile(99.0);
        self.result.max_latency = self.latencies.max();
        self.result.misses = self.latencies.len();
        self.result.msgs_per_miss = if self.result.misses > 0 {
            self.result.messages as f64 / self.result.misses as f64
        } else {
            0.0
        };
        self.result.dir_occupancy = if t > 0 {
            self.busy_dir_cycles as f64 / (t as f64 * self.cfg.n_addrs as f64)
        } else {
            0.0
        };
        self.result.peak_channel_depth = self.net.peak_depth;
        self.result.coverage = self.coverage.take();
        Ok(self.result)
    }

    /// Delivers at most one ripe message per destination node.
    fn deliver_phase(&mut self, t: u64) -> Result<(), SimError> {
        let total = self.cfg.n_caches + 1;
        for dst in 0..total {
            let mut delivered = false;
            let mut saw_stall = false;
            let mut saw_backpressure = false;
            'src: for src in 0..total {
                let mut cands = std::mem::take(&mut self.cand_buf);
                self.net.candidates(src, dst, t, &mut cands);
                for &idx in &cands {
                    match self.try_deliver(t, src, dst, idx)? {
                        Delivery::Done => {
                            delivered = true;
                            break;
                        }
                        Delivery::Stalled => saw_stall = true,
                        Delivery::Backpressured => saw_backpressure = true,
                    }
                }
                self.cand_buf = cands;
                if delivered {
                    break 'src;
                }
            }
            if !delivered && saw_stall {
                self.result.stall_cycles += 1;
            }
            if !delivered && saw_backpressure {
                self.result.backpressure_cycles += 1;
            }
        }
        Ok(())
    }

    /// Attempts to deliver candidate `idx` of channel `src → dst`.
    fn try_deliver(
        &mut self,
        t: u64,
        src: usize,
        dst: usize,
        idx: usize,
    ) -> Result<Delivery, SimError> {
        let SimMsg { addr, msg } = self.net.peek(src, dst, idx);
        let is_dir = dst == self.dir_node();
        let event = Event::Msg(msg.mtype);
        let a = addr as usize;
        if let Some(cov) = self.coverage.as_mut() {
            let pair = if is_dir {
                (MachineTag::DIRECTORY, self.dirs[a].state, event)
            } else {
                (MachineTag::CACHE, self.caches[dst][a].state, event)
            };
            cov.insert(pair);
        }
        let arc = if is_dir {
            select_arc_indexed(
                self.dir_fsm,
                &self.dir_idx,
                self.dirs[a].state,
                event,
                Some(&msg),
                None,
                Some(&self.dirs[a]),
            )
        } else {
            select_arc_indexed(
                self.cache_fsm,
                &self.cache_idx,
                self.caches[dst][a].state,
                event,
                Some(&msg),
                Some(&self.caches[dst][a]),
                None,
            )
        };
        let Some(arc) = arc else {
            let holder = if is_dir {
                format!("directory in {}", self.dir_fsm.state(self.dirs[a].state).full_name())
            } else {
                format!(
                    "cache n{dst} in {}",
                    self.cache_fsm.state(self.caches[dst][a].state).full_name()
                )
            };
            return Err(SimError::UnexpectedMessage(format!("{msg} (block {addr}) at {holder}")));
        };
        if arc.kind == ArcKind::Stall {
            return Ok(Delivery::Stalled);
        }
        // Tentative apply on a copy: committing requires the outgoing
        // messages to fit their (possibly bounded) channels.
        let dir_id = NodeId(self.dir_node() as u8);
        let (outcome, committed_cache, committed_dir);
        if is_dir {
            let mut entry = self.dirs[a].clone();
            outcome = apply(
                self.dir_fsm,
                arc,
                Some(&msg),
                MachineCtx::Dir { entry: &mut entry, self_id: dir_id },
                0,
            )
            .map_err(SimError::Exec)?;
            committed_cache = None;
            committed_dir = Some(entry);
        } else {
            let mut block = self.caches[dst][a].clone();
            outcome = apply(
                self.cache_fsm,
                arc,
                Some(&msg),
                MachineCtx::Cache { block: &mut block, self_id: NodeId(dst as u8), dir_id },
                0,
            )
            .map_err(SimError::Exec)?;
            committed_cache = Some(block);
            committed_dir = None;
        }
        if !self.net.accepts(&outcome.outgoing) {
            return Ok(Delivery::Backpressured);
        }
        // Commit.
        self.net.take(src, dst, idx);
        if let Some(entry) = committed_dir {
            self.dirs[a] = entry;
        }
        if let Some(block) = committed_cache {
            self.caches[dst][a] = block;
        }
        self.result.messages += 1;
        for m in outcome.outgoing {
            self.net.send(t, SimMsg { addr, msg: m }, &mut self.rng);
        }
        if !is_dir && outcome.performed.is_some() {
            if let Some((flight_addr, start)) = self.in_flight[dst] {
                if flight_addr == addr {
                    self.in_flight[dst] = None;
                    self.latencies.record(t - start);
                    self.result.completed += 1;
                    self.next_issue[dst] = t + self.cfg.think_time;
                }
            }
        }
        Ok(Delivery::Done)
    }

    /// Idle cores issue their next scheduled access.
    fn issue_phase(&mut self, t: u64) -> Result<(), SimError> {
        let dir_id = NodeId(self.dir_node() as u8);
        for c in 0..self.cfg.n_caches {
            if self.cursor[c] >= self.schedules[c].len()
                || self.in_flight[c].is_some()
                || self.next_issue[c] > t
            {
                continue;
            }
            let op = self.schedules[c][self.cursor[c]];
            let a = op.addr as usize;
            let event = Event::Access(op.access);
            if let Some(cov) = self.coverage.as_mut() {
                cov.insert((MachineTag::CACHE, self.caches[c][a].state, event));
            }
            let arc = select_arc_indexed(
                self.cache_fsm,
                &self.cache_idx,
                self.caches[c][a].state,
                event,
                None,
                Some(&self.caches[c][a]),
                None,
            );
            let Some(arc) = arc else {
                // The SSP defines no behaviour (replacement of an invalid
                // block): trivially complete.
                self.cursor[c] += 1;
                self.result.completed += 1;
                self.result.hits += 1;
                self.next_issue[c] = t + self.cfg.think_time;
                continue;
            };
            if arc.kind == ArcKind::Stall {
                continue; // retry next cycle
            }
            let mut block = self.caches[c][a].clone();
            let outcome = apply(
                self.cache_fsm,
                arc,
                None,
                MachineCtx::Cache { block: &mut block, self_id: NodeId(c as u8), dir_id },
                0,
            )
            .map_err(SimError::Exec)?;
            if !self.net.accepts(&outcome.outgoing) {
                self.result.backpressure_cycles += 1;
                continue; // retry when the channel drains
            }
            self.caches[c][a] = block;
            self.cursor[c] += 1;
            for m in outcome.outgoing {
                self.net.send(t, SimMsg { addr: op.addr, msg: m }, &mut self.rng);
            }
            if outcome.performed.is_some() {
                self.result.completed += 1;
                self.result.hits += 1;
                self.next_issue[c] = t + self.cfg.think_time;
            } else {
                self.in_flight[c] = Some((op.addr, t));
            }
        }
        Ok(())
    }
}

enum Delivery {
    Done,
    Stalled,
    Backpressured,
}
