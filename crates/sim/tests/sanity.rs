//! Every built-in protocol, simulated against its declared workload
//! sanity envelope (`protogen_protocols::sim_sanity`).

use protogen_core::{generate, GenConfig};
use protogen_protocols::{by_name, sim_sanity, NAMES};
use protogen_sim::{simulate, SimConfig, Workload};

fn cfg(workload: Workload) -> SimConfig {
    SimConfig {
        n_caches: 2,
        n_addrs: 2,
        accesses_per_core: 40,
        workload,
        seed: 0xBADCAB,
        ..SimConfig::default()
    }
}

#[test]
fn protocols_meet_their_private_workload_envelope() {
    for name in NAMES {
        let sanity = sim_sanity(name).unwrap();
        let ssp = by_name(name).unwrap();
        for gc in [GenConfig::stalling(), GenConfig::non_stalling()] {
            let g = generate(&ssp, &gc).unwrap();
            let r = simulate(&g.cache, &g.directory, &cfg(Workload::Private))
                .unwrap_or_else(|e| panic!("{name} ({:?}): {e}", gc.concurrency));
            assert_eq!(r.completed, 80, "{name}");
            if sanity.private_stall_free {
                assert_eq!(r.stall_cycles, 0, "{name} stalled on disjoint working sets");
            }
            if let Some(per_core) = sanity.private_misses_per_core {
                assert_eq!(
                    r.misses,
                    2 * per_core,
                    "{name} ({:?}): expected {per_core} misses/core",
                    gc.concurrency
                );
            }
        }
    }
}

#[test]
fn protocols_meet_the_messages_per_miss_floor_under_contention() {
    for name in NAMES {
        let sanity = sim_sanity(name).unwrap();
        let ssp = by_name(name).unwrap();
        for gc in [GenConfig::stalling(), GenConfig::non_stalling()] {
            let g = generate(&ssp, &gc).unwrap();
            let r = simulate(&g.cache, &g.directory, &cfg(Workload::Uniform { store_pct: 50 }))
                .unwrap_or_else(|e| panic!("{name} ({:?}): {e}", gc.concurrency));
            assert!(r.misses > 0, "{name}: a contended run must miss");
            assert!(
                r.msgs_per_miss >= sanity.min_msgs_per_miss,
                "{name} ({:?}): {:.2} msgs/miss below floor {:.2}",
                gc.concurrency,
                r.msgs_per_miss,
                sanity.min_msgs_per_miss
            );
        }
    }
}

/// The architectural point of MESI's E state, measured: a private
/// load-then-store working set upgrades silently under MESI but pays a
/// second coherence transaction under MSI.
#[test]
fn mesi_exclusive_state_halves_private_misses_vs_msi() {
    let run = |name: &str| {
        let ssp = by_name(name).unwrap();
        let g = generate(&ssp, &GenConfig::non_stalling()).unwrap();
        simulate(&g.cache, &g.directory, &cfg(Workload::Private)).unwrap()
    };
    let msi = run("msi");
    let mesi = run("mesi");
    assert!(
        mesi.misses < msi.misses,
        "MESI ({}) should miss less than MSI ({}) on private data",
        mesi.misses,
        msi.misses
    );
}
