//! Offline minimal stand-in for `proptest` (see `compat/README.md`).
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! integer-range and tuple strategies, [`any`] for primitives, and
//! [`ProptestConfig::with_cases`]. Sampling is deterministic (seeded from
//! the test name), and there is no shrinking: a failing case panics with
//! the normal assertion message, which includes the sampled inputs when
//! the assertion formats them.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// Creates the deterministic RNG for a named test.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, usize);

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A/0),
    (A/0, B/1),
    (A/0, B/1, C/2),
    (A/0, B/1, C/2, D/3),
    (A/0, B/1, C/2, D/3, E/4),
    (A/0, B/1, C/2, D/3, E/4, F/5),
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr)
        $( $(#[$attr:meta])* fn $name:ident
            ( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $( let $arg = $crate::Strategy::sample(&($strategy), &mut __rng); )+
                $body
            }
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (panics on failure here; the
/// real proptest would shrink first).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A strategy producing `Vec`s of `element` values with a length
    /// drawn from `size` (the real API's `Into<SizeRange>` is narrowed
    /// to the `Range<usize>` form the workspace uses).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Map,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_any_sample_in_domain() {
        let mut rng = crate::test_rng("ranges_and_any_sample_in_domain");
        for _ in 0..200 {
            assert!((0u8..3).sample(&mut rng) < 3);
            let v = (1usize..=4).sample(&mut rng);
            assert!((1..=4).contains(&v));
            let _: bool = any::<bool>().sample(&mut rng);
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (any::<bool>(), 0u8..10).prop_map(|(b, n)| if b { n + 10 } else { n });
        let mut rng = crate::test_rng("prop_map_and_tuples_compose");
        for _ in 0..200 {
            assert!(strat.sample(&mut rng) < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_binds(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100, "x={x} flag={flag}");
        }
    }
}
