//! Offline minimal stand-in for `rand` 0.8 (see `compat/README.md`).
//!
//! Provides exactly what the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer
//! ranges. The generator is SplitMix64 — deterministic, fast, and good
//! enough for workload synthesis; it makes no cryptographic claims.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that a [`Rng`] can sample uniformly from a range.
pub trait SampleUniform: Copy {
    /// Maps a raw 64-bit random word into `[low, high)`.
    fn from_u64_in(word: u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_u64_in(word: u64, low: Self, high: Self) -> Self {
                debug_assert!(low < high);
                let span = (high as u128) - (low as u128);
                low + (word as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// A half-open or inclusive range that can be sampled.
pub trait SampleRange<T> {
    /// Returns `(low, high)` as a half-open pair.
    fn bounds(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn bounds(self) -> (T, T) {
        (self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn bounds(self) -> ($t, $t) {
                (*self.start(), *self.end() + 1)
            }
        }
    )*};
}
impl_sample_range_inclusive!(u8, u16, u32, u64, usize);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Returns the next raw 64-bit random word.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (low, high) = range.bounds();
        let word = self.next_u64();
        T::from_u64_in(word, low, high)
    }

    /// Returns a random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: SplitMix64 in this stand-in.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E3779B97F4A7C15) }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(0..100u8);
            assert!(v < 100);
            let w = r.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
