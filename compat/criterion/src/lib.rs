//! Offline minimal stand-in for `criterion` (see `compat/README.md`).
//!
//! Keeps the `crates/bench` harnesses runnable with `cargo bench`: each
//! benchmark body executes `sample_size` times and the median wall-clock
//! time is printed. There is no statistical analysis, warm-up, or HTML
//! report — this is a smoke-timing harness, not a measurement tool.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(&full, self.sample_size, f);
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the
/// code under measurement.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `f` and records it as a sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        std::hint::black_box(out);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher::default();
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("bench {name:<40} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    println!("bench {name:<40} median {median:>12?} over {} samples", b.samples.len());
}

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// Defines a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("t", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 3);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut runs = 0;
        g.bench_function("inner", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 2);
    }
}
