//! Offline stand-in for `serde`: no-op `Serialize`/`Deserialize` derives.
//!
//! The workspace's IR types carry `#[derive(Serialize, Deserialize)]` so
//! they are serde-ready the moment the real dependency is available; until
//! then these derives expand to nothing. See `compat/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
